(* Soft constraints: IC-shaped statements that are *not* enforced but are
   exploitable by the optimizer (the paper's central construct).

   A soft constraint couples
   - a [statement] (any IC body, or one of the typed mined artifacts —
     difference bands, linear correlations, FDs, join-hole sets);
   - a [kind]: [Absolute] (no violations in the current state; usable in
     rewrite) or [Statistical conf] (holds for a [conf] fraction; usable
     in cardinality estimation only);
   - a [state] in the lifecycle the paper sketches in §3.2/§4.1:
     [Probation] (installed but not yet trusted), [Active],
     [Violated] (an update broke an ASC; unusable until repaired),
     [Dropped]. *)

open Rel

type statement =
  | Ic_stmt of Icdef.body
  | Fd_stmt of Mining.Fd_mine.fd
  | Corr_stmt of Mining.Correlation.t * Mining.Correlation.band
  | Diff_stmt of Mining.Diff_band.t * Mining.Diff_band.band
  | Holes_stmt of Mining.Join_holes.t
  | Part_stmt of { partition : int; pred : Expr.pred }

type kind = Absolute | Statistical of float

type state = Probation | Active | Violated | Dropped

(* @guarded-by db.rwlock — like the catalog that owns it; kind updates
   from the read path serialize behind core.recalibration *)
type t = {
  name : string;
  table : string; (* primary table (left table for hole sets) *)
  mutable statement : statement; (* sync repair widens it in place *)
  mutable kind : kind;
  mutable state : state;
  mutable installed_at_mutations : int;
      (* the table's mutation counter when (re)validated: the currency
         anchor of §3.3 *)
  mutable violation_count : int; (* observed since installation *)
}

let make ~name ~table ?(kind = Absolute) ?(state = Active)
    ~installed_at_mutations statement =
  {
    name;
    table;
    statement;
    kind;
    state;
    installed_at_mutations;
    violation_count = 0;
  }

let is_usable t = t.state = Active

let is_absolute t = match t.kind with Absolute -> true | Statistical _ -> false

let confidence t =
  match t.kind with Absolute -> 1.0 | Statistical c -> c

(* The statement as a CHECK-style predicate over one row of [table], when
   it has one (FDs and hole sets are not row-local). *)
let check_pred t =
  match t.statement with
  | Ic_stmt (Icdef.Check p) -> Some p
  | Ic_stmt (Icdef.Not_null c) -> Some (Expr.Is_not_null (Expr.column c))
  | Ic_stmt (Icdef.Primary_key _ | Icdef.Unique _ | Icdef.Foreign_key _) ->
      None
  | Fd_stmt _ | Holes_stmt _ -> None
  (* partition-conditional, not a table-wide row check: rows of sibling
     partitions need not satisfy it (see {!Maintenance.row_violates}) *)
  | Part_stmt _ -> None
  | Corr_stmt (c, band) ->
      Some (Mining.Correlation.to_check_pred c ~eps:band.Mining.Correlation.eps)
  | Diff_stmt (d, band) -> Some (Mining.Diff_band.to_check_pred d band)

(* As an IC declaration (for feeding the rewrite context's ASC set). *)
let to_icdef t =
  match t.statement with
  | Ic_stmt body ->
      Some (Icdef.make ~enforcement:Icdef.Informational ~name:t.name
              ~table:t.table body)
  | _ -> (
      match check_pred t with
      | Some p ->
          Some
            (Icdef.make ~enforcement:Icdef.Informational ~name:t.name
               ~table:t.table (Icdef.Check p))
      | None -> None)

let pp_statement ppf = function
  | Ic_stmt body -> Icdef.pp_body ppf body
  | Fd_stmt fd -> Mining.Fd_mine.pp_fd ppf fd
  | Corr_stmt (c, band) ->
      Fmt.pf ppf "%s = %g*%s%+g ± %g" c.Mining.Correlation.col_a
        c.Mining.Correlation.k c.Mining.Correlation.col_b
        c.Mining.Correlation.b band.Mining.Correlation.eps
  | Diff_stmt (d, band) ->
      Fmt.pf ppf "%s - %s IN [%g, %g]" d.Mining.Diff_band.col_hi
        d.Mining.Diff_band.col_lo band.Mining.Diff_band.d_min
        band.Mining.Diff_band.d_max
  | Holes_stmt h -> Mining.Join_holes.pp ppf h
  | Part_stmt { partition; pred } ->
      Fmt.pf ppf "partition %d: %s" partition (Expr.to_string_pred pred)

let state_to_string = function
  | Probation -> "probation"
  | Active -> "active"
  | Violated -> "violated"
  | Dropped -> "dropped"

let state_of_string = function
  | "probation" -> Some Probation
  | "active" -> Some Active
  | "violated" -> Some Violated
  | "dropped" -> Some Dropped
  | _ -> None

let pp_state ppf s = Fmt.string ppf (state_to_string s)

let pp ppf t =
  Fmt.pf ppf "%s on %s: %a [%s, %a]" t.name t.table pp_statement t.statement
    (match t.kind with
    | Absolute -> "ASC"
    | Statistical c -> Printf.sprintf "SSC %.1f%%" (100.0 *. c))
    pp_state t.state
