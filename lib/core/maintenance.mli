(** ASC/SSC maintenance (paper §4.1–§4.3).

    For each soft constraint a {!policy} decides what happens when a
    mutation violates it:
    - [Drop] — the paper's "maintenance policy of last resort": the SC
      flips to [Violated] and stops being used;
    - [Sync_repair] — repair at violation time by {e widening} the
      statement (bands grow to cover the new row; hole rectangles
      overlapping a new value are discarded — the conservative §4.3
      tactic);
    - [Async_repair] — flip to [Violated], queue the SC, and let
      {!run_repairs} re-mine it from current data later ("dropped from
      active, and queued for repair").

    SSCs are never checked synchronously (their whole point); their
    confidences decay via {!Currency} and are restored by
    {!refresh_statistics}, the RUNSTATS-analogue. *)

open Rel

type policy = Drop | Sync_repair | Async_repair

type event = { sc_name : string; action : string; at_mutations : int }

type t

val fault_points : string list
(** The named fault sites this module fires ([maintenance.violation],
    [maintenance.repair], [maintenance.refresh]); declared with
    {!Obs.Fault} by {!Recovery.attach}. *)

val attach : ?default_policy:policy -> Database.t -> Sc_catalog.t -> t
(** Register the mutation listener; [default_policy] defaults to
    [Drop]. *)

val set_policy : t -> string -> policy -> unit

val events : t -> event list
(** The maintenance log, oldest first. *)

val record : t -> string -> string -> unit
(** [record t sc_name action] appends to the maintenance log — also used
    by the cardinality-feedback loop in {!Softdb}. *)

val track_fd : t -> Soft_constraint.t -> unit
(** Build the incremental lhs→rhs map for an FD soft constraint so
    violations are detected in O(1) per insert; flips the SC to
    [Violated] if the FD does not even hold at install time. *)

val row_violates : Database.t -> Soft_constraint.t -> Tuple.t -> bool

val run_repairs : t -> unit
(** Drain the asynchronous repair queue: re-mine each queued statement
    from current data, reinstating on success and dropping on failure. *)

val promote_survivors :
  ?after:int -> t -> Soft_constraint.t list * Soft_constraint.t list
(** Judge the constraints in [Probation] (paper §3.2: "not employed over a
    probationary period"): any with observed violations are dropped; those
    that survived at least [after] mutations of their table violation-free
    are promoted to [Active].  Returns [(promoted, rejected)]. *)

val refresh_statistics : t -> unit
(** Re-measure every SSC's confidence against the data (coverage of
    bands, FD agreement, check satisfaction) and reset its currency
    anchor — the periodic "brought up to date, just as other catalog
    statistics" of §1. *)

val measured_confidence : Database.t -> Soft_constraint.t -> float option
(** The measure {!refresh_statistics} applies, exposed on its own: band
    coverage / FD agreement / check satisfaction against current data,
    [None] when the statement class has no scalar measure.  This is the
    "observed selectivity" the cardinality-feedback loop compares with
    the stored confidence. *)

val queue_refresh : t -> string -> unit
(** Flag a soft constraint for refresh through the existing repair queue
    (deduplicated) — the feedback loop's escalation when observation and
    stored confidence diverge badly. *)

val repair_queue : t -> string list
(** The pending repair/refresh queue, oldest first. *)
