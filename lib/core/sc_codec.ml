(* A text codec for soft-constraint statements, used by the WAL: every
   catalog transition that installs or rewrites a statement logs its
   representation, and recovery parses it back.

   IC-shaped statements ride on the SQL printer/parser round-trip (the
   body is printed inside a dummy ALTER TABLE … ADD CONSTRAINT … NOT
   ENFORCED and re-parsed); the typed mined artifacts get positional
   field encodings with hexadecimal float literals ([%h]) so bounds
   round-trip bit-exactly — a rounded 100%-band bound would silently
   invalidate an ASC. *)

open Rel

exception Codec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Codec_error s)) fmt
let fstr = Printf.sprintf "%h"

let fparse s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> err "bad float %S" s

let iparse s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> err "bad int %S" s

(* dummy carrier for the SQL round-trip of IC bodies *)
let ic_repr (body : Icdef.body) =
  Sqlfe.Printer.statement_to_string
    (Sqlfe.Ast.Alter_add_constraint
       {
         table = "_codec";
         con =
           {
             Sqlfe.Ast.con_name = Some "_codec_c";
             con_body = body;
             con_mode = Sqlfe.Ast.Mode_informational;
           };
       })

let ic_parse sql =
  match Sqlfe.Parser.parse_statement sql with
  | Sqlfe.Ast.Alter_add_constraint { con = { Sqlfe.Ast.con_body; _ }; _ } ->
      con_body
  | _ -> err "not an IC statement: %s" sql
  | exception e -> err "unparseable IC statement %S (%s)" sql
                     (Printexc.to_string e)

let diff_band (b : Mining.Diff_band.band) =
  Printf.sprintf "%s:%s:%s" (fstr b.Mining.Diff_band.confidence)
    (fstr b.Mining.Diff_band.d_min) (fstr b.Mining.Diff_band.d_max)

let diff_band_parse s =
  match String.split_on_char ':' s with
  | [ c; lo; hi ] ->
      {
        Mining.Diff_band.confidence = fparse c;
        d_min = fparse lo;
        d_max = fparse hi;
      }
  | _ -> err "bad diff band %S" s

let corr_band (b : Mining.Correlation.band) =
  Printf.sprintf "%s:%s" (fstr b.Mining.Correlation.confidence)
    (fstr b.Mining.Correlation.eps)

let corr_band_parse s =
  match String.split_on_char ':' s with
  | [ c; e ] -> { Mining.Correlation.confidence = fparse c; eps = fparse e }
  | _ -> err "bad correlation band %S" s

let rect (r : Mining.Join_holes.rect) =
  Printf.sprintf "%s:%s:%s:%s" (fstr r.Mining.Join_holes.a_lo)
    (fstr r.Mining.Join_holes.a_hi) (fstr r.Mining.Join_holes.b_lo)
    (fstr r.Mining.Join_holes.b_hi)

let rect_parse s =
  match String.split_on_char ':' s with
  | [ a_lo; a_hi; b_lo; b_hi ] ->
      {
        Mining.Join_holes.a_lo = fparse a_lo;
        a_hi = fparse a_hi;
        b_lo = fparse b_lo;
        b_hi = fparse b_hi;
      }
  | _ -> err "bad hole rectangle %S" s

let semis enc xs = String.concat ";" (List.map enc xs)

let semis_parse dec s =
  if s = "" then []
  else List.map dec (String.split_on_char ';' s)

let statement_repr (stmt : Soft_constraint.statement) =
  match stmt with
  | Soft_constraint.Ic_stmt body -> "ic|" ^ ic_repr body
  | Soft_constraint.Fd_stmt fd ->
      String.concat "|"
        [
          "fd";
          fd.Mining.Fd_mine.table;
          String.concat "," fd.Mining.Fd_mine.lhs;
          fd.Mining.Fd_mine.rhs;
        ]
  | Soft_constraint.Diff_stmt (d, band) ->
      String.concat "|"
        [
          "diff";
          d.Mining.Diff_band.table;
          d.Mining.Diff_band.col_hi;
          d.Mining.Diff_band.col_lo;
          string_of_int d.Mining.Diff_band.rows;
          semis diff_band d.Mining.Diff_band.bands;
          diff_band band;
        ]
  | Soft_constraint.Corr_stmt (c, band) ->
      String.concat "|"
        [
          "corr";
          c.Mining.Correlation.table;
          c.Mining.Correlation.col_a;
          c.Mining.Correlation.col_b;
          fstr c.Mining.Correlation.k;
          fstr c.Mining.Correlation.b;
          fstr c.Mining.Correlation.r2;
          string_of_int c.Mining.Correlation.rows;
          fstr c.Mining.Correlation.selectivity;
          semis corr_band c.Mining.Correlation.bands;
          corr_band band;
        ]
  | Soft_constraint.Holes_stmt h ->
      String.concat "|"
        [
          "holes";
          h.Mining.Join_holes.left_table;
          h.Mining.Join_holes.left_col;
          h.Mining.Join_holes.right_table;
          h.Mining.Join_holes.right_col;
          h.Mining.Join_holes.join_left;
          h.Mining.Join_holes.join_right;
          string_of_int h.Mining.Join_holes.grid;
          fstr h.Mining.Join_holes.a_min;
          fstr h.Mining.Join_holes.a_max;
          fstr h.Mining.Join_holes.b_min;
          fstr h.Mining.Join_holes.b_max;
          string_of_int h.Mining.Join_holes.join_rows;
          semis rect h.Mining.Join_holes.rects;
        ]
  (* the predicate rides the same SQL round-trip as IC bodies; it goes
     last because the SQL text may itself contain '|' *)
  | Soft_constraint.Part_stmt { partition; pred } ->
      String.concat "|"
        [ "part"; string_of_int partition; ic_repr (Icdef.Check pred) ]

let statement_of_repr s =
  match String.index_opt s '|' with
  | None -> err "bad statement repr %S" s
  | Some i -> (
      let tag = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "ic" -> Soft_constraint.Ic_stmt (ic_parse rest)
      | "fd" -> (
          match String.split_on_char '|' rest with
          | [ table; lhs; rhs ] ->
              Soft_constraint.Fd_stmt
                {
                  Mining.Fd_mine.table;
                  lhs = String.split_on_char ',' lhs;
                  rhs;
                }
          | _ -> err "bad fd repr %S" s)
      | "diff" -> (
          match String.split_on_char '|' rest with
          | [ table; col_hi; col_lo; rows; bands; band ] ->
              Soft_constraint.Diff_stmt
                ( {
                    Mining.Diff_band.table;
                    col_hi;
                    col_lo;
                    rows = iparse rows;
                    bands = semis_parse diff_band_parse bands;
                  },
                  diff_band_parse band )
          | _ -> err "bad diff repr %S" s)
      | "corr" -> (
          match String.split_on_char '|' rest with
          | [ table; col_a; col_b; k; b; r2; rows; sel; bands; band ] ->
              Soft_constraint.Corr_stmt
                ( {
                    Mining.Correlation.table;
                    col_a;
                    col_b;
                    k = fparse k;
                    b = fparse b;
                    r2 = fparse r2;
                    rows = iparse rows;
                    bands = semis_parse corr_band_parse bands;
                    selectivity = fparse sel;
                  },
                  corr_band_parse band )
          | _ -> err "bad corr repr %S" s)
      | "holes" -> (
          match String.split_on_char '|' rest with
          | [
           left_table; left_col; right_table; right_col; join_left;
           join_right; grid; a_min; a_max; b_min; b_max; join_rows; rects;
          ] ->
              Soft_constraint.Holes_stmt
                {
                  Mining.Join_holes.left_table;
                  left_col;
                  right_table;
                  right_col;
                  join_left;
                  join_right;
                  grid = iparse grid;
                  a_min = fparse a_min;
                  a_max = fparse a_max;
                  b_min = fparse b_min;
                  b_max = fparse b_max;
                  rects = semis_parse rect_parse rects;
                  join_rows = iparse join_rows;
                }
          | _ -> err "bad holes repr %S" s)
      | "part" -> (
          match String.index_opt rest '|' with
          | None -> err "bad part repr %S" s
          | Some j -> (
              let partition = iparse (String.sub rest 0 j) in
              let sql = String.sub rest (j + 1) (String.length rest - j - 1) in
              match ic_parse sql with
              | Icdef.Check pred ->
                  Soft_constraint.Part_stmt { partition; pred }
              | _ -> err "part statement is not a check predicate %S" s))
      | _ -> err "unknown statement tag %S" tag)
