(* The selection stage of the SC process (paper §3.2): "the selection
   stage chooses the most promising of the discovered SCs to keep …
   based on the estimated utility of each for the optimizer with respect
   to the optimizer's capabilities, the database's statistics, and the
   workload", weighed against its predicted maintenance cost.

   Benefit is measured with the optimizer itself: each workload query is
   optimized with and without the candidate installed, and the estimated
   cost difference — plus credit when the candidate changed the chosen
   plan at all (an SSC can improve a plan while *raising* its estimated
   cost, since better estimates are often larger) — is the utility. *)

open Rel

type assessment = {
  sc : Soft_constraint.t;
  benefit : float; (* total estimated cost saved across the workload *)
  plans_changed : int; (* queries whose physical plan differed *)
  maintenance_cost : float;
  net : float;
}

(* Relative per-mutation upkeep of each statement class, scaled by the
   expected number of mutations per workload execution. *)
let upkeep_weight (sc : Soft_constraint.t) =
  match sc.Soft_constraint.statement with
  | Soft_constraint.Ic_stmt (Icdef.Check _) -> 1.0
  | Soft_constraint.Ic_stmt (Icdef.Not_null _) -> 0.5
  | Soft_constraint.Ic_stmt (Icdef.Primary_key _ | Icdef.Unique _) -> 8.0
  | Soft_constraint.Ic_stmt (Icdef.Foreign_key _) -> 10.0
  | Soft_constraint.Diff_stmt _ | Soft_constraint.Corr_stmt _ -> 1.0
  | Soft_constraint.Fd_stmt _ -> 2.0
  | Soft_constraint.Holes_stmt _ -> 5.0
  (* a partition-domain check only fires for rows routing to its segment *)
  | Soft_constraint.Part_stmt _ -> 1.0

let maintenance_cost ?(mutations_per_workload = 100.0) sc =
  let base = upkeep_weight sc in
  let factor =
    (* SSCs are asynchronous: an order of magnitude cheaper (§3.3) *)
    if Soft_constraint.is_absolute sc then 1.0 else 0.1
  in
  0.01 *. base *. factor *. mutations_per_workload

let ctx_with db catalog extra flags =
  let tmp = Sc_catalog.create () in
  List.iter (fun sc -> Sc_catalog.add tmp sc) (Sc_catalog.all catalog);
  List.iter (fun sc -> Sc_catalog.add tmp sc) extra;
  List.iter
    (fun (name, table) ->
      Sc_catalog.register_exception_table tmp ~constraint_name:name ~table)
    catalog.Sc_catalog.exception_tables;
  Sc_catalog.rewrite_ctx ~flags tmp db

let rec plans_equal (a : Exec.Plan.t) (b : Exec.Plan.t) =
  match (a, b) with
  | Exec.Plan.Union_all xs, Exec.Plan.Union_all ys ->
      List.length xs = List.length ys && List.for_all2 plans_equal xs ys
  | a, b -> a = b

let assess ?(flags = Opt.Rewrite.all_on) ?mutations_per_workload ~db ~stats
    ~catalog ~workload candidates =
  let penv = Opt.Planner.make_env db stats in
  let base_ctx = ctx_with db catalog [] flags in
  let base_costs_and_plans =
    List.map
      (fun q ->
        let r = Opt.Explain.optimize base_ctx penv q in
        (r.Opt.Explain.estimated_cost, r.Opt.Explain.plan))
      workload
  in
  List.map
    (fun sc ->
      let ctx = ctx_with db catalog [ sc ] flags in
      let benefit = ref 0.0 and plans_changed = ref 0 in
      List.iter2
        (fun q (base_cost, base_plan) ->
          let r = Opt.Explain.optimize ctx penv q in
          let saved = base_cost -. r.Opt.Explain.estimated_cost in
          if saved > 0.0 then benefit := !benefit +. saved;
          if not (plans_equal base_plan r.Opt.Explain.plan) then begin
            incr plans_changed;
            (* an SSC that changed the plan has informed the optimizer
               even when the new estimate is not lower *)
            if saved <= 0.0 then
              benefit := !benefit +. (0.05 *. base_cost)
          end)
        workload base_costs_and_plans;
      let maintenance_cost = maintenance_cost ?mutations_per_workload sc in
      {
        sc;
        benefit = !benefit;
        plans_changed = !plans_changed;
        maintenance_cost;
        net = !benefit -. maintenance_cost;
      })
    candidates

(* Keep the [k] best candidates with positive net utility. *)
let select ?flags ?mutations_per_workload ?(k = 8) ~db ~stats ~catalog
    ~workload candidates =
  assess ?flags ?mutations_per_workload ~db ~stats ~catalog ~workload
    candidates
  |> List.filter (fun a -> a.net > 0.0)
  |> List.sort (fun a b -> Float.compare b.net a.net)
  |> List.filteri (fun i _ -> i < k)

let pp_assessment ppf a =
  Fmt.pf ppf "%-28s benefit=%8.1f plans_changed=%d upkeep=%6.2f net=%8.1f"
    a.sc.Soft_constraint.name a.benefit a.plans_changed a.maintenance_cost
    a.net
