(** The system façade: a database with a soft-constraint catalog wired
    into its optimizer.

    SQL goes in; DDL/DML execute against catalog and storage (including
    the [SOFT] / [NOT ENFORCED] declaration modes and
    [CREATE EXCEPTION TABLE]); queries run through rewrite → plan →
    execute with every soft-constraint pathway available — and
    individually toggleable via {!Opt.Rewrite.flags}, which the ablation
    experiments use. *)

open Rel

type t

val create : ?flags:Opt.Rewrite.flags -> unit -> t
(** A fresh empty database with maintenance attached ([Drop] default
    policy). *)

val db : t -> Database.t
val catalog : t -> Sc_catalog.t
val maintenance : t -> Maintenance.t
val statistics : t -> Stats.Runstats.t

(** {1 Observability}

    Every executed query feeds the metrics registry and the query log,
    and — when feedback is on (the default) — recalibrates the catalog
    confidence of any SSC whose twinned predicate's observed selectivity
    contradicts it (divergence beyond the tolerance pulls the confidence
    toward the observation; beyond twice the tolerance additionally
    queues the SC for refresh).  The registries back the sys.metrics,
    sys.query_log, sys.soft_constraints and sys.plan_cache virtual
    tables, readable with plain SELECTs. *)

val metrics : t -> Obs.Metrics.t
val query_log : t -> Obs.Query_log.t

val set_feedback : ?tolerance:float -> t -> bool -> unit
(** Toggle confidence recalibration; [tolerance] defaults to
    {!Obs.Feedback.default_tolerance}. *)

val set_plan_cache_source : t -> (unit -> Tuple.t list) -> unit
(** Bind the sys.plan_cache row generator — called by
    {!Plan_cache.create}; rows must match
    {!Obs.Sys_tables.plan_cache_schema}. *)

type stmt_event =
  | Stmt_started of Sqlfe.Ast.statement
  | Stmt_finished of Sqlfe.Ast.statement * bool  (** success? *)

val on_statement : t -> (stmt_event -> unit) -> unit
(** Statement framing hooks around {!exec_statement} — the WAL link
    ({!Recovery}) uses them for autocommit boundaries and DDL capture.
    [Stmt_finished] fires on both success ([true]) and exception
    ([false], then re-raised). *)

exception Error of string

val rewrite_ctx : ?flags:Opt.Rewrite.flags -> t -> Opt.Rewrite.ctx
val planner_env : t -> Opt.Planner.env

val runstats : ?table:string -> t -> unit
(** Collect statistics for one table, or all. *)

val install_sc : t -> Soft_constraint.t -> unit
(** Add to the catalog (and start FD tracking when applicable). *)

val install_soft_declaration :
  t -> name:string -> table:string -> body:Icdef.body ->
  declared_confidence:float option -> unit
(** The [SOFT] DDL semantics: with a declared confidence < 1, install as
    an SSC; otherwise verify against the data — an ASC if it holds, an
    SSC at the measured confidence for check-shaped statements, an
    {!Error} otherwise. *)

val mine_partition_domains : t -> table:string -> Soft_constraint.t list
(** Mine each segment's observed partition-column band ({!Part.Mine})
    and install it as an absolute, overturnable [Part_stmt] SC named
    [<table>_p<i>_domain], anchored on the segment's local mutation
    counter.  Replaces same-named SCs from a previous mining pass.
    Raises {!Error} if [table] is not partitioned. *)

type outcome =
  | Rows of Exec.Executor.result
  | Affected of int
  | Report of Opt.Explain.report
  | Analyzed of Opt.Explain.analysis
  | Done of string

val exec_statement : t -> Sqlfe.Ast.statement -> outcome
(** One statement, framed by the {!on_statement} hooks.  A
    [CREATE INDEX ... ONLINE] registers only the write-only shell — the
    caller owns the backfill ({!Idx.Lifecycle}). *)

val exec : t -> string -> outcome
(** Parse and execute one statement.  Unlike {!exec_statement}, a
    pending ONLINE index build is finished synchronously afterwards
    (there is no session loop to drive it). *)

val exec_script : t -> string -> outcome list
(** Like {!exec}, per statement — ONLINE builds finish before the next
    statement runs. *)

val advise : t -> Idx.Advisor.candidate list
(** Mine sys.query_log plus the SC catalog for ranked index candidates —
    the generator behind sys.index_advisor and [softdb advise]. *)

val advice_statement : Idx.Advisor.candidate -> string
(** The ready-to-run [CREATE INDEX ... ONLINE] text for a candidate. *)

val optimize : ?flags:Opt.Rewrite.flags -> t -> Sqlfe.Ast.query ->
  Opt.Explain.report

val run_query : ?flags:Opt.Rewrite.flags -> t -> Sqlfe.Ast.query ->
  Exec.Executor.result

val note_guard_fallback : t -> string list -> unit
(** Record one guarded-plan fallback whose failed guards are the given
    constraint names: bumps [sc_guard_fallbacks] and, for every failed
    guard that is a partition-domain SC, the per-partition fallback
    counter [sys.partitions] reports. *)

val guard_ok : t -> string -> bool
(** Is the named constraint still a valid basis for a compiled plan?
    True for declared hard/informational ICs, usable soft constraints,
    and exception-backed ASCs whose exception table still exists. *)

val execute_report : t -> Opt.Explain.report ->
  Exec.Executor.result * bool
(** Execute with SC-guard checking at open (paper §4.1's
    flag-and-revert): if a guard fails, run the rewrite-free backup plan
    instead, increment the [sc_guard_fallbacks] metric, and return
    [true] as the second component. *)

val analyze : ?flags:Opt.Rewrite.flags -> t -> Sqlfe.Ast.query ->
  Opt.Explain.analysis
(** EXPLAIN ANALYZE: optimize, execute instrumented, annotate per node;
    feeds the metrics/feedback loop like any other executed query. *)

val query : ?flags:Opt.Rewrite.flags -> t -> string -> Exec.Executor.result
(** Parse, optimize and execute a SELECT. *)

val explain : ?flags:Opt.Rewrite.flags -> t -> string -> Opt.Explain.report

val query_baseline : t -> string -> Exec.Executor.result
(** The same query with the whole soft-constraint machinery off — the
    oracle used throughout the tests and benches. *)
