(* Sybase-style min/max soft constraints (paper §2 and §4.2): "Sybase will
   maintain max and min information for a table attribute … available as
   'constraint' information to the optimizer which can abbreviate range
   conditions in a query.  The 'SCs' are maintained synchronously — that
   is, at transaction time — so serve as ASCs."

   A tracked column gets an ASC [CHECK (col BETWEEN lo AND hi)] whose
   bounds are the column's current extremes, with the synchronous-widening
   maintenance policy: an insert outside the range widens the statement in
   O(1) instead of violating it, so the SC is valid at every instant
   ("the ASC has to be available whenever the query is executed", §4.2).
   Deletes may leave the range wider than the data — sound, merely
   sub-optimal — until [retighten] re-mines it. *)

open Rel

let sc_name ~table ~column = Printf.sprintf "%s_%s_domain" table column

let install_column t ~table ~column =
  let db = Softdb.db t in
  let tbl = Database.table_exn db table in
  match Mining.Domain_mine.mine_range tbl ~column with
  | None -> None
  | Some range ->
      let name = sc_name ~table ~column in
      let sc =
        Soft_constraint.make ~name ~table ~kind:Soft_constraint.Absolute
          ~installed_at_mutations:(Table.mutations tbl)
          (Soft_constraint.Ic_stmt
             (Icdef.Check (Mining.Domain_mine.range_to_check range)))
      in
      Softdb.install_sc t sc;
      Maintenance.set_policy (Softdb.maintenance t) name
        Maintenance.Sync_repair;
      Some sc

(* Track min/max for the given columns (every non-string column when
   [columns] is omitted).  Returns the installed constraints. *)
let track ?columns t ~table =
  let db = Softdb.db t in
  let tbl = Database.table_exn db table in
  let columns =
    match columns with
    | Some cs -> cs
    | None ->
        List.filter_map
          (fun c ->
            match c.Schema.dtype with
            | Value.TInt | Value.TFloat | Value.TDate -> Some c.Schema.name
            | Value.TString | Value.TBool -> None)
          (Schema.columns (Table.schema tbl))
  in
  List.filter_map (fun column -> install_column t ~table ~column) columns

(* The currently maintained [lo, hi] for a tracked column, if any. *)
let current_range t ~table ~column =
  match Sc_catalog.find (Softdb.catalog t) (sc_name ~table ~column) with
  | Some
      {
        Soft_constraint.statement =
          Soft_constraint.Ic_stmt
            (Icdef.Check (Expr.Between (_, Expr.Const lo, Expr.Const hi)));
        state = Soft_constraint.Active;
        _;
      } ->
      Some (lo, hi)
  | _ -> None

(* Deletes can leave the maintained range loose; re-mine it from the data
   (the asynchronous "return to optimal characterization" of §4.3). *)
let retighten t ~table =
  let db = Softdb.db t in
  let tbl = Database.table_exn db table in
  List.iter
    (fun (sc : Soft_constraint.t) ->
      match sc.Soft_constraint.statement with
      | Soft_constraint.Ic_stmt (Icdef.Check (Expr.Between (Expr.Col r, _, _)))
        when sc.Soft_constraint.name
             = sc_name ~table ~column:r.Expr.col -> (
          match Mining.Domain_mine.mine_range tbl ~column:r.Expr.col with
          | Some range ->
              let catalog = Softdb.catalog t in
              Sc_catalog.set_statement catalog sc
                (Soft_constraint.Ic_stmt
                   (Icdef.Check (Mining.Domain_mine.range_to_check range)));
              Sc_catalog.set_state catalog sc Soft_constraint.Active;
              Sc_catalog.set_anchor catalog sc (Table.mutations tbl)
          | None -> ())
      | _ -> ())
    (Sc_catalog.on_table (Softdb.catalog t) table)
