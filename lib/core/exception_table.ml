(* ASCs as ASTs (paper §4.4): "an IC can be considered as a materialized
   view that is always empty.  It may not be empty, in which case the
   materialized view explicitly represents the exceptions to the ASC."

   [install] creates a table with the base table's schema, populates it
   with the rows currently violating the constraint's check statement,
   and registers a mutation listener that keeps it incrementally
   maintained: violating inserts/updates land in it, deletes and repairs
   leave it.  Updates that violate the ASC are thereby *allowed* — the
   exceptions are just stored — and the exception-union rewrite stays
   exactly correct at all times. *)

open Rel

type handle = {
  constraint_name : string;
  base_table : string;
  exception_table : string;
  check : Expr.pred;
}

exception Not_check_shaped of string

let exception_rows db handle =
  match Database.find_table db handle.exception_table with
  | Some t -> Table.cardinality t
  | None -> 0

(* find the rid in the exception table holding exactly [row] *)
let find_exception_rid db handle row =
  match Database.find_table db handle.exception_table with
  | None -> None
  | Some exc ->
      let found = ref None in
      Table.iteri exc ~f:(fun rid r ->
          if !found = None && Tuple.equal r row then found := Some rid);
      !found

let handle_of db ~(sc : Soft_constraint.t) ~table_name =
  let check =
    match Soft_constraint.check_pred sc with
    | Some p -> p
    | None -> raise (Not_check_shaped sc.Soft_constraint.name)
  in
  let base = Database.table_exn db sc.Soft_constraint.table in
  {
    constraint_name = sc.Soft_constraint.name;
    base_table = Table.name base;
    exception_table = table_name;
    check;
  }

(* incremental maintenance listener shared by [install] and [reattach] *)
let listen db handle =
  let table_name = handle.exception_table in
  let base = Database.table_exn db handle.base_table in
  let binding = Expr.Binding.of_schema (Table.schema base) in
  let violates row = Expr.check_violated binding handle.check row in
  let norm = String.lowercase_ascii in
  Database.on_mutation db (fun m ->
      match m with
      | Database.Inserted { table; row; _ }
        when norm table = norm handle.base_table ->
          if violates row then
            ignore (Database.insert db ~table:table_name (Tuple.copy row))
      | Database.Deleted { table; row; _ }
        when norm table = norm handle.base_table -> (
          if violates row then
            match find_exception_rid db handle row with
            | Some rid -> ignore (Database.delete db ~table:table_name rid)
            | None -> ())
      | Database.Updated { table; before; after; _ }
        when norm table = norm handle.base_table ->
          let was = violates before and is = violates after in
          if was && not is then (
            match find_exception_rid db handle before with
            | Some rid -> ignore (Database.delete db ~table:table_name rid)
            | None -> ())
          else if (not was) && is then
            ignore (Database.insert db ~table:table_name (Tuple.copy after))
          else if was && is && not (Tuple.equal before after) then (
            match find_exception_rid db handle before with
            | Some rid ->
                Database.update db ~table:table_name rid (Tuple.copy after)
            | None ->
                ignore (Database.insert db ~table:table_name (Tuple.copy after)))
      | Database.Inserted _ | Database.Deleted _ | Database.Updated _ -> ())

let install db ~(sc : Soft_constraint.t) ~table_name =
  let handle = handle_of db ~sc ~table_name in
  let base = Database.table_exn db handle.base_table in
  let base_schema = Table.schema base in
  let exc_schema =
    Schema.make table_name
      (List.map
         (fun c -> { c with Schema.nullable = true })
         (Schema.columns base_schema))
  in
  ignore (Database.create_table db exc_schema);
  (* initial population: current violators *)
  let binding = Expr.Binding.of_schema base_schema in
  let violators =
    Table.fold base ~init:[] ~f:(fun acc _ row ->
        if Expr.check_violated binding handle.check row then row :: acc else acc)
  in
  List.iter
    (fun row ->
      ignore (Database.insert db ~table:table_name (Tuple.copy row)))
    (List.rev violators);
  listen db handle;
  handle

(* Recovery path: the exception table and its contents were already
   replayed from the log — only the handle and the maintenance listener
   must be re-established (re-populating would duplicate rows). *)
let reattach db ~(sc : Soft_constraint.t) ~table_name =
  let handle = handle_of db ~sc ~table_name in
  listen db handle;
  handle

(* Verification oracle: the exception table holds exactly the violators. *)
let consistent db handle =
  match
    ( Database.find_table db handle.base_table,
      Database.find_table db handle.exception_table )
  with
  | Some base, Some exc ->
      let binding = Expr.Binding.of_schema (Table.schema base) in
      let violators =
        Table.fold base ~init:[] ~f:(fun acc _ row ->
            if Expr.check_violated binding handle.check row then row :: acc
            else acc)
        |> List.sort Tuple.compare
      in
      let stored = List.sort Tuple.compare (Table.to_list exc) in
      List.length violators = List.length stored
      && List.for_all2 Tuple.equal violators stored
  | _ -> false
