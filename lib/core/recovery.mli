(** Crash-safe durability: checkpointing and log replay over {!Rel.Wal}.

    {!attach} links a live {!Softdb.t} to a write-ahead log: data
    mutations, soft-constraint catalog transitions, DDL (as printed SQL)
    and transaction boundaries are appended as framed records.  Outside
    explicit {!Txn} transactions each statement autocommits its own
    frame.

    {!recover} replays the committed frames of a log into a fresh
    database: a crash at any point yields exactly the pre- or
    post-transaction state.  In particular (paper §4.1), an ASC
    overturned by a transaction whose commit record never reached the log
    is re-instated, because the whole frame is skipped.

    Fault points from {!Rel.Wal}, {!Txn} and {!Maintenance} are declared
    with {!Obs.Fault} on attach; after a simulated crash
    ({!Obs.Fault.crash_pending}) every handler freezes, so nothing the
    doomed process "did" after the crash instant reaches the log. *)

open Rel

exception Recovery_error of string

type t
(** A live link between a database and its WAL. *)

val attach : Softdb.t -> Wal.t -> t
(** Register the mutation / catalog / transaction / statement listeners
    and declare the fault points. *)

val softdb : t -> Softdb.t
val wal : t -> Wal.t

val flush : t -> unit
(** Commit any open autocommit frame and flush the sink. *)

val detach : t -> unit
(** {!flush}, then stop logging permanently. *)

val kill : t -> unit
(** Stop logging {e without} flushing — the simulated-crash path. *)

val checkpoint : t -> unit
(** Atomically rewrite the log as one committed frame reproducing the
    current state: schema DDL, raw rows (rid-faithful), soft-constraint
    images and exception-table registrations.  Raises {!Recovery_error}
    during an active explicit transaction. *)

val recover : Wal.record list -> Softdb.t
(** Replay the committed frames into a fresh database.  Raises
    {!Recovery_error} if a logged DDL statement fails to re-execute. *)

val recover_sharded : Wal.record list -> Softdb.t
(** Like {!recover}, but data records are regrouped into per-partition
    shard streams (via their WAL shard tags) and each stream replays as
    an independent unit in ascending shard order; DDL and catalog
    records act as barriers.  Equivalent to {!recover} because one rid's
    records always share a tag and distinct rids commute between
    barriers. *)

(** {1 Salvage-aware recovery}

    The strict replayers above trust their input; this is the path that
    faces real, possibly-damaged log files.  Every unparsable,
    checksum-failing or LSN-regressing line is {e corrupt}.  If no
    committed frame appears at or after the first corrupt line, the
    damage is a {e torn tail}: everything from the tear on is provably
    uncommitted, so it is quarantined to [<wal>.salvage], the file is
    truncated, and recovery proceeds — in both modes.  Otherwise the
    damage is {e interior}: [Strict] raises {!Recovery_error}, while
    [Salvage] drops exactly the transactions open across a corrupt line
    (their replay would be partial), reports them, and applies the
    rest.  The outcome is a {!report}, also registered on the recovered
    database as the [sys.recovery] virtual table. *)

type mode = Strict | Salvage

type corrupt_line = { lineno : int; reason : string }

type report = {
  mode : mode;
  scanned_lines : int;
  applied_records : int;  (** non-frame records actually replayed *)
  committed_txns : int;  (** distinct committed transactions replayed *)
  dropped_txns : int list;
      (** transactions interior corruption forced [Salvage] to drop *)
  torn_tail : bool;
  quarantined_bytes : int;
  salvage_path : string option;
  corrupt : corrupt_line list;
}

val mode_name : mode -> string
(** ["strict"] / ["salvage"], as shown in sys.recovery. *)

val recover_scan : ?mode:mode -> Wal.scanned list -> Softdb.t * report
(** Classify a {!Wal.scan_string}/{!Wal.scan_file} image and replay the
    surviving committed frames sequentially (default mode [Strict]).
    Pure: no file is touched, so [quarantined_bytes]/[salvage_path]
    stay zero even for a torn tail. *)

val recover_sharded_scan :
  ?mode:mode -> Wal.scanned list -> Softdb.t * report
(** {!recover_scan} with the sharded replayer — identical salvage
    semantics, identical report. *)

val recover_file : ?mode:mode -> string -> Softdb.t * report
(** {!recover_scan} over a real file, with the physical side effects: a
    torn tail is appended to [<path>.salvage] and the log truncated at
    the tear (rewrite + rename — [core] links no unix); interior
    corruption in [Salvage] mode quarantines the corrupt lines and
    rewrites the log from the surviving records, so the repaired file
    replays to exactly the recovered state. *)

val resume : ?mode:mode -> string -> Softdb.t * t * report
(** [resume path] recovers from the log file at [path] (empty, absent,
    or damaged — {!recover_file} semantics, default [Strict]), reopens
    it for appending, and attaches — the CLI's [--wal] startup path. *)
