(** Crash-safe durability: checkpointing and log replay over {!Rel.Wal}.

    {!attach} links a live {!Softdb.t} to a write-ahead log: data
    mutations, soft-constraint catalog transitions, DDL (as printed SQL)
    and transaction boundaries are appended as framed records.  Outside
    explicit {!Txn} transactions each statement autocommits its own
    frame.

    {!recover} replays the committed frames of a log into a fresh
    database: a crash at any point yields exactly the pre- or
    post-transaction state.  In particular (paper §4.1), an ASC
    overturned by a transaction whose commit record never reached the log
    is re-instated, because the whole frame is skipped.

    Fault points from {!Rel.Wal}, {!Txn} and {!Maintenance} are declared
    with {!Obs.Fault} on attach; after a simulated crash
    ({!Obs.Fault.crash_pending}) every handler freezes, so nothing the
    doomed process "did" after the crash instant reaches the log. *)

open Rel

exception Recovery_error of string

type t
(** A live link between a database and its WAL. *)

val attach : Softdb.t -> Wal.t -> t
(** Register the mutation / catalog / transaction / statement listeners
    and declare the fault points. *)

val softdb : t -> Softdb.t
val wal : t -> Wal.t

val flush : t -> unit
(** Commit any open autocommit frame and flush the sink. *)

val detach : t -> unit
(** {!flush}, then stop logging permanently. *)

val kill : t -> unit
(** Stop logging {e without} flushing — the simulated-crash path. *)

val checkpoint : t -> unit
(** Atomically rewrite the log as one committed frame reproducing the
    current state: schema DDL, raw rows (rid-faithful), soft-constraint
    images and exception-table registrations.  Raises {!Recovery_error}
    during an active explicit transaction. *)

val recover : Wal.record list -> Softdb.t
(** Replay the committed frames into a fresh database.  Raises
    {!Recovery_error} if a logged DDL statement fails to re-execute. *)

val recover_sharded : Wal.record list -> Softdb.t
(** Like {!recover}, but data records are regrouped into per-partition
    shard streams (via their WAL shard tags) and each stream replays as
    an independent unit in ascending shard order; DDL and catalog
    records act as barriers.  Equivalent to {!recover} because one rid's
    records always share a tag and distinct rids commute between
    barriers. *)

val resume : string -> Softdb.t * t
(** [resume path] recovers from the log file at [path] (empty or absent
    is fine), reopens it for appending, and attaches — the CLI's
    [--wal] startup path. *)
