(** Soft constraints: IC-shaped statements that are {e not} enforced but
    are exploitable by the optimizer — the paper's central construct.

    A soft constraint couples a {!statement} (any IC body, or one of the
    typed mined artifacts), a {!kind} ([Absolute]: no violations in the
    current state, usable in rewrite; [Statistical conf]: holds for a
    fraction, usable in cardinality estimation only), and a {!state} in
    the lifecycle of paper §3.2/§4.1. *)

open Rel

type statement =
  | Ic_stmt of Icdef.body
  | Fd_stmt of Mining.Fd_mine.fd
  | Corr_stmt of Mining.Correlation.t * Mining.Correlation.band
  | Diff_stmt of Mining.Diff_band.t * Mining.Diff_band.band
  | Holes_stmt of Mining.Join_holes.t
  | Part_stmt of { partition : int; pred : Expr.pred }
      (** Per-partition domain constraint: every row of [table] that
          routes to segment [partition] satisfies [pred] — the partition
          flavour backing pruning certificates ({!Part.Catalog}).
          Partition-conditional, so {!check_pred} is [None]; violation
          detection routes the row first ({!Maintenance}). *)

type kind = Absolute | Statistical of float

type state = Probation | Active | Violated | Dropped

type t = {
  name : string;
  table : string;  (** primary table (left table for hole sets) *)
  mutable statement : statement;  (** sync repair widens it in place *)
  mutable kind : kind;
  mutable state : state;
  mutable installed_at_mutations : int;
      (** the table's mutation counter when (re)validated — the currency
          anchor of §3.3 *)
  mutable violation_count : int;
}

val make :
  name:string -> table:string -> ?kind:kind -> ?state:state ->
  installed_at_mutations:int -> statement -> t
(** [kind] defaults to [Absolute], [state] to [Active]. *)

val is_usable : t -> bool
(** [Active]. *)

val is_absolute : t -> bool

val confidence : t -> float
(** 1.0 for ASCs; the base confidence (before currency decay) for
    SSCs. *)

val check_pred : t -> Expr.pred option
(** The statement as a row-level CHECK predicate, when it has one (FDs
    and hole sets are not row-local). *)

val to_icdef : t -> Icdef.t option
(** As an informational IC declaration, for the rewrite context's ASC
    set. *)

val state_to_string : state -> string
(** The lowercase names used by displays and the WAL codec. *)

val state_of_string : string -> state option

val pp_statement : Format.formatter -> statement -> unit
val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
