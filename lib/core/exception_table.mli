(** ASCs as ASTs (paper §4.4): "an IC can be considered as a materialized
    view that is always empty.  It may not be empty, in which case the
    materialized view explicitly represents the exceptions to the ASC."

    {!install} creates a table with the base table's schema, populates it
    with the rows currently violating the constraint's check statement,
    and registers a mutation listener that keeps it incrementally exact:
    violating inserts/updates land in it, deletes and repairs leave it.
    Updates that violate the ASC are thereby {e allowed} — the exceptions
    are just stored — and the exception-union rewrite
    ({!Opt.Rewrite.exception_union}) stays exactly correct at all
    times. *)

open Rel

type handle = {
  constraint_name : string;
  base_table : string;
  exception_table : string;
  check : Expr.pred;
}

exception Not_check_shaped of string
(** The soft constraint has no row-level check statement (FDs, hole
    sets). *)

val install : Database.t -> sc:Soft_constraint.t -> table_name:string ->
  handle

val reattach : Database.t -> sc:Soft_constraint.t -> table_name:string ->
  handle
(** Recovery path: the exception table and its rows already exist (they
    were replayed from the log); re-establish only the handle and the
    incremental-maintenance listener, without creating or re-populating
    the table. *)

val exception_rows : Database.t -> handle -> int

val consistent : Database.t -> handle -> bool
(** Verification oracle: the exception table holds exactly the current
    violators. *)
