(* The soft-constraint catalog: the persistent registry the paper argues
   RDBMSs lack ("there is no mechanism in RDBMSs to represent such
   characterizations and to maintain them", §3.2).

   Besides storage and lookup it produces the optimizer's view: the
   rewrite context inputs ({!Opt.Rewrite.ctx}) assembled from every
   *usable* constraint, with SSC confidences decayed by the currency
   model. *)

open Rel

(* Catalog transitions fire change events so the durability layer
   ({!Recovery}) can log them; every field write therefore goes through
   the setters below rather than mutating {!Soft_constraint.t} directly. *)
type change =
  | Installed of Soft_constraint.t
  | Removed of Soft_constraint.t
  | State_changed of Soft_constraint.t
  | Kind_changed of Soft_constraint.t
  | Anchor_changed of Soft_constraint.t
  | Violations_changed of Soft_constraint.t
  | Statement_changed of Soft_constraint.t
  | Exception_registered of { constraint_name : string; table : string }

(* @guarded-by db.rwlock — catalog structure changes ride the
   single-writer path; read-path confidence recalibration serializes
   behind core.recalibration before touching entries *)
type t = {
  mutable scs : Soft_constraint.t list;
  mutable exception_tables : (string * string) list;
      (* constraint name -> exception table name *)
  mutable listeners : (change -> unit) list;
}

let create () = { scs = []; exception_tables = []; listeners = [] }

let norm = String.lowercase_ascii

exception Duplicate_name of string

let on_change t f = t.listeners <- f :: t.listeners
let notify t c = List.iter (fun f -> f c) t.listeners

let add t sc =
  if
    List.exists
      (fun s -> norm s.Soft_constraint.name = norm sc.Soft_constraint.name)
      t.scs
  then raise (Duplicate_name sc.Soft_constraint.name);
  t.scs <- t.scs @ [ sc ];
  notify t (Installed sc)

let find t name =
  List.find_opt (fun s -> norm s.Soft_constraint.name = norm name) t.scs

let drop t name =
  match find t name with
  | None -> ()
  | Some sc ->
      sc.Soft_constraint.state <- Soft_constraint.Dropped;
      t.scs <-
        List.filter (fun s -> norm s.Soft_constraint.name <> norm name) t.scs;
      notify t (Removed sc)

(* ---- field setters (fire change events) --------------------------------- *)

let set_state t (sc : Soft_constraint.t) state =
  if sc.Soft_constraint.state <> state then begin
    sc.Soft_constraint.state <- state;
    notify t (State_changed sc)
  end

let set_kind t (sc : Soft_constraint.t) kind =
  if sc.Soft_constraint.kind <> kind then begin
    sc.Soft_constraint.kind <- kind;
    notify t (Kind_changed sc)
  end

let set_anchor t (sc : Soft_constraint.t) anchor =
  if sc.Soft_constraint.installed_at_mutations <> anchor then begin
    sc.Soft_constraint.installed_at_mutations <- anchor;
    notify t (Anchor_changed sc)
  end

let set_violations t (sc : Soft_constraint.t) count =
  if sc.Soft_constraint.violation_count <> count then begin
    sc.Soft_constraint.violation_count <- count;
    notify t (Violations_changed sc)
  end

let set_statement t (sc : Soft_constraint.t) statement =
  sc.Soft_constraint.statement <- statement;
  notify t (Statement_changed sc)

let all t = t.scs

let on_table t table =
  List.filter (fun s -> norm s.Soft_constraint.table = norm table) t.scs

let usable t = List.filter Soft_constraint.is_usable t.scs

let register_exception_table t ~constraint_name ~table =
  t.exception_tables <-
    (constraint_name, table)
    :: List.remove_assoc constraint_name t.exception_tables;
  notify t (Exception_registered { constraint_name; table })

let exception_table_for t constraint_name =
  List.assoc_opt constraint_name t.exception_tables

let exception_tables t = List.rev t.exception_tables

(* ---- optimizer view ----------------------------------------------------- *)

let mutations_of db table =
  match Database.find_table db table with
  | Some tbl -> Table.mutations tbl
  | None -> 0

let rows_of db table =
  match Database.find_table db table with
  | Some tbl -> Table.cardinality tbl
  | None -> 0

(* The planner ignores SSCs whose decayed confidence is at or below this
   bound; the catalog linter flags them so the operator can refresh or
   drop them. *)
let use_threshold = 0.0

(* The drift counter a soft constraint's currency anchor compares
   against.  Partition-domain statements use their home segment's local
   counter — one hot shard's churn must not age its siblings' SCs. *)
let drift_counter db (sc : Soft_constraint.t) =
  match sc.Soft_constraint.statement with
  | Soft_constraint.Part_stmt { partition; _ } -> (
      match Database.partitioning db sc.Soft_constraint.table with
      | Some part when partition >= 0 && partition < Partition.count part ->
          Partition.seg_mutations part partition
      | _ -> mutations_of db sc.Soft_constraint.table)
  | _ -> mutations_of db sc.Soft_constraint.table

(* Confidence usable now, after currency decay (§3.3). *)
let current_confidence db (sc : Soft_constraint.t) =
  let base = Soft_constraint.confidence sc in
  let updates_since =
    drift_counter db sc - sc.Soft_constraint.installed_at_mutations
  in
  let table_rows =
    match sc.Soft_constraint.statement with
    | Soft_constraint.Part_stmt { partition; _ } -> (
        match Database.partitioning db sc.Soft_constraint.table with
        | Some part when partition >= 0 && partition < Partition.count part ->
            Partition.rows part partition
        | _ -> rows_of db sc.Soft_constraint.table)
    | _ -> rows_of db sc.Soft_constraint.table
  in
  Currency.usable_confidence ~base ~updates_since ~table_rows

let rewrite_ctx ?(flags = Opt.Rewrite.all_on) t db : Opt.Rewrite.ctx =
  let usable = usable t in
  let has_exceptions (sc : Soft_constraint.t) =
    List.mem_assoc sc.Soft_constraint.name t.exception_tables
  in
  (* an exception-backed ASC may have stored violations, so it must only
     be exploited through the exception-union rule, never as a plain
     always-true statement *)
  let ascs =
    List.filter_map
      (fun sc ->
        if Soft_constraint.is_absolute sc && not (has_exceptions sc) then
          Soft_constraint.to_icdef sc
        else None)
      usable
  in
  (* typed shapes of the valid ASCs enable range propagation *)
  let asc_shapes =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        if not (Soft_constraint.is_absolute sc && not (has_exceptions sc))
        then None
        else
          match sc.Soft_constraint.statement with
          | Soft_constraint.Diff_stmt (d, band) ->
              Some
                {
                  Opt.Rewrite.ssc_name = sc.Soft_constraint.name;
                  shape = Opt.Rewrite.Diff_band (d, band);
                }
          | Soft_constraint.Corr_stmt (c, band) ->
              Some
                {
                  Opt.Rewrite.ssc_name = sc.Soft_constraint.name;
                  shape = Opt.Rewrite.Corr_band (c, band);
                }
          | _ -> None)
      usable
  in
  let sscs =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        if Soft_constraint.is_absolute sc then None
        else
          let conf = current_confidence db sc in
          if conf <= use_threshold then None
          else
            match sc.Soft_constraint.statement with
            | Soft_constraint.Diff_stmt (d, band) ->
                Some
                  {
                    Opt.Rewrite.ssc_name = sc.Soft_constraint.name;
                    shape =
                      Opt.Rewrite.Diff_band
                        (d, { band with Mining.Diff_band.confidence = conf });
                  }
            | Soft_constraint.Corr_stmt (c, band) ->
                Some
                  {
                    Opt.Rewrite.ssc_name = sc.Soft_constraint.name;
                    shape =
                      Opt.Rewrite.Corr_band
                        (c, { band with Mining.Correlation.confidence = conf });
                  }
            | Soft_constraint.Ic_stmt _ | Soft_constraint.Fd_stmt _
            | Soft_constraint.Holes_stmt _ | Soft_constraint.Part_stmt _ ->
                None)
      usable
  in
  let fds =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        match sc.Soft_constraint.statement with
        | Soft_constraint.Fd_stmt fd when Soft_constraint.is_absolute sc ->
            Some
              { Opt.Rewrite.fd_sc = Some sc.Soft_constraint.name; fd }
        | _ -> None)
      usable
  in
  let holes =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        match sc.Soft_constraint.statement with
        | Soft_constraint.Holes_stmt h when Soft_constraint.is_absolute sc ->
            Some
              {
                Opt.Rewrite.holes_sc = Some sc.Soft_constraint.name;
                holes = h;
              }
        | _ -> None)
      usable
  in
  (* valid absolute partition-domain SCs: the premises partition pruning
     names in its certificates *)
  let parts =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        match sc.Soft_constraint.statement with
        | Soft_constraint.Part_stmt { partition; pred }
          when Soft_constraint.is_absolute sc ->
            Some
              {
                Opt.Rewrite.part_sc_name = Some sc.Soft_constraint.name;
                part_table = sc.Soft_constraint.table;
                part_index = partition;
                part_pred = pred;
              }
        | _ -> None)
      usable
  in
  let exceptions =
    List.filter_map
      (fun (name, table) ->
        match find t name with
        | Some sc -> (
            match Soft_constraint.check_pred sc with
            | Some check ->
                Some
                  {
                    Opt.Rewrite.exc_constraint = name;
                    exc_base_table = sc.Soft_constraint.table;
                    exc_table = table;
                    exc_check = check;
                  }
            | None -> None)
        | None -> None)
      t.exception_tables
  in
  Opt.Rewrite.make_ctx ~flags ~ascs ~asc_shapes ~sscs ~fds ~holes ~exceptions
    ~parts db

let pp ppf t =
  Fmt.pf ppf "soft-constraint catalog (%d entries):@." (List.length t.scs);
  List.iter (fun sc -> Fmt.pf ppf "  %a@." Soft_constraint.pp sc) t.scs
