(** The soft-constraint catalog — the registry the paper argues RDBMSs
    lack ("there is no mechanism in RDBMSs to represent such
    characterizations and to maintain them", §3.2).

    Besides storage and lookup it produces the optimizer's view: a
    {!Opt.Rewrite.ctx} assembled from every {e usable} constraint, with
    SSC confidences decayed by the currency model and exception-backed
    ASCs routed exclusively through the exception-union rule. *)

open Rel

(** A catalog transition, published to {!on_change} listeners — the
    durability layer ({!Recovery}) logs these into the WAL.  Every field
    write must therefore go through the setters below rather than
    mutating {!Soft_constraint.t} directly. *)
type change =
  | Installed of Soft_constraint.t
  | Removed of Soft_constraint.t
  | State_changed of Soft_constraint.t
  | Kind_changed of Soft_constraint.t
  | Anchor_changed of Soft_constraint.t
  | Violations_changed of Soft_constraint.t
  | Statement_changed of Soft_constraint.t
  | Exception_registered of { constraint_name : string; table : string }

type t = {
  mutable scs : Soft_constraint.t list;
  mutable exception_tables : (string * string) list;
      (** constraint name → exception table name *)
  mutable listeners : (change -> unit) list;
}

val create : unit -> t

exception Duplicate_name of string

val on_change : t -> (change -> unit) -> unit
(** Register a listener invoked after every catalog transition. *)

val add : t -> Soft_constraint.t -> unit
val find : t -> string -> Soft_constraint.t option

val drop : t -> string -> unit
(** Marks the constraint [Dropped] and removes it. *)

(** {1 Field setters}

    In-place soft-constraint updates (state flips, repairs widening the
    statement, confidence recalibration, currency re-anchoring) fire the
    corresponding {!change} event; no-op writes are suppressed except for
    statements, which are always treated as changed. *)

val set_state : t -> Soft_constraint.t -> Soft_constraint.state -> unit
val set_kind : t -> Soft_constraint.t -> Soft_constraint.kind -> unit
val set_anchor : t -> Soft_constraint.t -> int -> unit
val set_violations : t -> Soft_constraint.t -> int -> unit
val set_statement : t -> Soft_constraint.t -> Soft_constraint.statement -> unit

val all : t -> Soft_constraint.t list
val on_table : t -> string -> Soft_constraint.t list

val usable : t -> Soft_constraint.t list
(** The [Active] entries. *)

val register_exception_table : t -> constraint_name:string -> table:string ->
  unit

val exception_table_for : t -> string -> string option

val exception_tables : t -> (string * string) list
(** All (constraint name, exception table) registrations, oldest
    first — the checkpoint dump reads this. *)

val mutations_of : Database.t -> string -> int
val rows_of : Database.t -> string -> int

val drift_counter : Database.t -> Soft_constraint.t -> int
(** The counter this SC's currency anchor compares against: its home
    segment's local mutation counter for partition-domain statements
    (one hot shard must not age its siblings' SCs), the whole table's
    otherwise.  Anchor writers ({!set_anchor} callers) must use this
    same counter. *)

val use_threshold : float
(** SSCs whose decayed confidence is at or below this bound are ignored
    by {!rewrite_ctx}; the catalog linter flags them. *)

val current_confidence : Database.t -> Soft_constraint.t -> float
(** Confidence usable {e now}: the base confidence decayed by
    {!Currency.usable_confidence} over the mutations since the anchor. *)

val rewrite_ctx : ?flags:Opt.Rewrite.flags -> t -> Database.t ->
  Opt.Rewrite.ctx

val pp : Format.formatter -> t -> unit
