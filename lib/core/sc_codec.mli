(** Text codec for soft-constraint statements, used by the WAL
    ({!Recovery}): catalog transitions log [statement_repr]; replay
    parses it back with [statement_of_repr].

    IC-shaped statements round-trip through the SQL printer/parser; the
    typed mined artifacts (FDs, difference bands, correlations, join
    holes) use positional field encodings with hexadecimal float
    literals, so every bound round-trips bit-exactly. *)

exception Codec_error of string

val statement_repr : Soft_constraint.statement -> string

val statement_of_repr : string -> Soft_constraint.statement
(** Inverse of {!statement_repr}; raises {!Codec_error} on malformed
    input. *)
