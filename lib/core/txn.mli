(** A simple transaction layer: an undo log over catalog mutations plus a
    snapshot of the soft-constraint catalog.

    Paper §4.1 raises the interaction between ASC maintenance and
    transactions: a transaction that violates (and so overturns) an ASC
    may later abort — "is the ASC then re-instated?"  Here yes, by
    construction: {!rollback} compensates the data mutations in reverse
    order and restores every soft constraint's statement, kind, state and
    currency anchor to their values at {!begin_}.  Exception tables stay
    consistent throughout because the compensating operations flow
    through the same mutation listeners.

    One transaction at a time; row identifiers of rows deleted and
    restored by a rollback are not preserved. *)

exception Transaction_error of string

exception Rollback_incomplete of exn list
(** Raised by {!rollback} when one or more compensating operations (or
    catalog restores) themselves failed: the rollback ran to completion
    over everything it {e could} undo, and the collected exceptions are
    reported oldest first. *)

type t

type event = Began of t | Committed of t | Rolled_back of t
(** Lifecycle notifications, published after the state change took
    effect — {!Recovery} frames WAL records with these. *)

val fault_points : string list
(** The named fault sites this module fires ([txn.begin],
    [txn.pre_commit], [txn.rollback]). *)

val on_event : (event -> unit) -> unit
(** Register a global lifecycle listener. *)

val id : t -> int
(** Monotonic transaction id (session-local, not the WAL txn id). *)

val softdb : t -> Softdb.t

val begin_ : Softdb.t -> t
(** Start recording; raises {!Transaction_error} if one is active. *)

val commit : t -> unit
(** Discard the undo log. *)

val rollback : t -> unit
(** Undo the recorded mutations (newest first) and restore the
    soft-constraint catalog snapshot.  A failure on one compensating
    entry does not stop the rest: all entries are attempted and the
    failures re-raised together as {!Rollback_incomplete}. *)

val mutation_count : t -> int

val abandon_current : unit -> unit
(** Forget an in-flight transaction {e without} compensating — the
    simulated-crash escape hatch: after a crash the process is presumed
    dead, and recovery (not rollback) re-establishes the invariants. *)

val atomically : Softdb.t -> (unit -> 'a) -> ('a, exn) result
(** Run a thunk in a transaction: [Ok] commits, an exception rolls back
    and is returned as [Error]. *)
