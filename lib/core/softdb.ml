(* The system façade: a database with a soft-constraint catalog wired into
   its optimizer.  SQL goes in; statements execute against the catalog and
   storage; queries run through rewrite → plan → execute with every
   soft-constraint pathway available (and individually toggleable, for
   the ablation experiments). *)

open Rel

type stmt_event =
  | Stmt_started of Sqlfe.Ast.statement
  | Stmt_finished of Sqlfe.Ast.statement * bool  (** success? *)

(* @guarded-by db.rwlock — engine flags and hooks change via write
   statements (or before the server starts); readers see them frozen *)
type t = {
  db : Database.t;
  stats : Stats.Runstats.t;
  catalog : Sc_catalog.t;
  maintenance : Maintenance.t;
  metrics : Obs.Metrics.t;
  query_log : Obs.Query_log.t;
  mutable flags : Opt.Rewrite.flags;
  mutable cost_params : Opt.Cost.params;
  mutable feedback : bool; (* recalibrate SSC confidence from execution *)
  mutable feedback_tolerance : float;
  mutable plan_cache_rows : unit -> Tuple.t list;
      (* sys.plan_cache generator, bound by Plan_cache.create (the cache
         depends on this module, not vice versa) *)
  mutable stmt_listeners : (stmt_event -> unit) list;
      (* statement framing hooks: the WAL link ({!Recovery}) uses them
         for autocommit boundaries and DDL capture *)
}

(* Cumulative per-partition execution counters live in the metrics
   registry under one key scheme, so sys.partitions, record_feedback and
   the fallback attribution all agree on the spelling. *)
let part_metric what table partition =
  Printf.sprintf "exec.partition.%s.%s.%d" what
    (String.lowercase_ascii table)
    partition

(* The domain SC of segment [i], whatever its current name: any
   [Part_stmt] in the catalog for this (table, partition). *)
let find_partition_sc t ~table ~partition =
  List.find_opt
    (fun (sc : Soft_constraint.t) ->
      String.lowercase_ascii sc.Soft_constraint.table
      = String.lowercase_ascii table
      &&
      match sc.Soft_constraint.statement with
      | Soft_constraint.Part_stmt p -> p.partition = partition
      | _ -> false)
    (Sc_catalog.all t.catalog)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let rewrite_ctx ?flags t =
  Sc_catalog.rewrite_ctx
    ~flags:(Option.value flags ~default:t.flags)
    t.catalog t.db

(* ---- index advisor -------------------------------------------------------- *)

(* Distill the SC catalog into the advisor's hint language: diff/corr
   bands become [Band] hints on the constrained column (range predicates
   on a banded column select contiguous key runs), valid FDs become
   covering-extension hints (dependent columns ride along for free). *)
let advisor_hints t =
  let ctx = rewrite_ctx t in
  let of_ssc (s : Opt.Rewrite.ssc) =
    match s.Opt.Rewrite.shape with
    | Opt.Rewrite.Diff_band (d, band) ->
        Idx.Advisor.Band
          {
            table = d.Mining.Diff_band.table;
            column = d.Mining.Diff_band.col_hi;
            width = band.Mining.Diff_band.d_max -. band.Mining.Diff_band.d_min;
          }
    | Opt.Rewrite.Corr_band (corr, band) ->
        Idx.Advisor.Band
          {
            table = corr.Mining.Correlation.table;
            column = corr.Mining.Correlation.col_a;
            width = 2.0 *. band.Mining.Correlation.eps;
          }
  in
  List.map of_ssc (ctx.Opt.Rewrite.asc_shapes @ ctx.Opt.Rewrite.sscs)
  @ List.map
      (fun (nf : Opt.Rewrite.named_fd) ->
        Idx.Advisor.Fd
          {
            table = nf.Opt.Rewrite.fd.Mining.Fd_mine.table;
            determinant = nf.Opt.Rewrite.fd.Mining.Fd_mine.lhs;
            dependents = [ nf.Opt.Rewrite.fd.Mining.Fd_mine.rhs ];
          })
      ctx.Opt.Rewrite.fds

let advise t =
  let queries =
    List.map
      (fun (e : Obs.Query_log.entry) -> e.Obs.Query_log.sql)
      (Obs.Query_log.entries t.query_log)
  in
  Idx.Advisor.advise t.db ~queries ~hints:(advisor_hints t)

let advice_statement (c : Idx.Advisor.candidate) =
  Printf.sprintf "CREATE INDEX %s_idx_%s ON %s (%s) ONLINE"
    c.Idx.Advisor.cand_table
    (String.concat "_" c.Idx.Advisor.cand_columns)
    c.Idx.Advisor.cand_table
    (String.concat ", " c.Idx.Advisor.cand_columns)

(* The sys.* views: read-only virtual tables over the live registries, so
   the repl can SELECT against its own observability state. *)
let register_sys_tables t =
  Database.register_virtual t.db ~name:"sys.metrics"
    ~schema:Obs.Sys_tables.metrics_schema (fun () ->
      Obs.Sys_tables.metrics_rows t.metrics);
  Database.register_virtual t.db ~name:"sys.query_log"
    ~schema:Obs.Sys_tables.query_log_schema (fun () ->
      Obs.Sys_tables.query_log_rows t.query_log);
  Database.register_virtual t.db ~name:"sys.soft_constraints"
    ~schema:Obs.Sys_tables.soft_constraints_schema (fun () ->
      List.map
        (fun (sc : Soft_constraint.t) ->
          Obs.Sys_tables.soft_constraint_row ~name:sc.Soft_constraint.name
            ~table_name:sc.Soft_constraint.table
            ~kind:
              (match sc.Soft_constraint.kind with
              | Soft_constraint.Absolute -> "ASC"
              | Soft_constraint.Statistical _ -> "SSC")
            ~state:(Fmt.str "%a" Soft_constraint.pp_state sc.Soft_constraint.state)
            ~confidence:
              (match sc.Soft_constraint.kind with
              | Soft_constraint.Absolute -> None
              | Soft_constraint.Statistical c -> Some c)
            ~current_confidence:
              (Some (Sc_catalog.current_confidence t.db sc))
            ~violations:sc.Soft_constraint.violation_count
            ~statement:
              (Fmt.str "%a" Soft_constraint.pp_statement
                 sc.Soft_constraint.statement))
        (Sc_catalog.all t.catalog));
  Database.register_virtual t.db ~name:"sys.plan_cache"
    ~schema:Obs.Sys_tables.plan_cache_schema (fun () -> t.plan_cache_rows ());
  Database.register_virtual t.db ~name:"sys.indexes"
    ~schema:Obs.Sys_tables.indexes_schema (fun () ->
      List.map
        (fun idx ->
          Obs.Sys_tables.index_row ~name:(Index.name idx)
            ~table_name:(Index.table_name idx)
            ~columns:(Index.columns idx) ~is_unique:(Index.is_unique idx)
            ~state:(Index.state_to_string (Index.state idx))
            ~entries:(Index.entries idx)
            ~distinct_keys:(Index.distinct_keys idx))
        (Database.all_indexes t.db));
  Database.register_virtual t.db ~name:"sys.index_advisor"
    ~schema:Obs.Sys_tables.index_advisor_schema (fun () ->
      List.mapi
        (fun i (c : Idx.Advisor.candidate) ->
          Obs.Sys_tables.index_advisor_row ~rank:(i + 1)
            ~table_name:c.Idx.Advisor.cand_table
            ~columns:c.Idx.Advisor.cand_columns
            ~covering:c.Idx.Advisor.cand_covering
            ~score:c.Idx.Advisor.cand_score
            ~queries:c.Idx.Advisor.cand_queries ~reason:c.Idx.Advisor.cand_reason
            ~statement:(advice_statement c))
        (advise t));
  (* empty until a WAL recovery replaces the generator ({!Recovery}) —
     registering it here keeps the table queryable on every database *)
  Database.register_virtual t.db ~name:"sys.recovery"
    ~schema:Obs.Sys_tables.recovery_schema (fun () -> []);
  (* the lockdep witness's observed edges; empty unless enabled *)
  Database.register_virtual t.db ~name:"sys.lockdep"
    ~schema:Obs.Sys_tables.lockdep_schema Obs.Sys_tables.lockdep_rows;
  Database.register_virtual t.db ~name:"sys.partitions"
    ~schema:Obs.Sys_tables.partitions_schema (fun () ->
      List.concat_map
        (fun table ->
          match Database.partitioning t.db table with
          | None -> []
          | Some part ->
              let spec = Partition.spec_to_string (Partition.spec part) in
              List.init (Partition.count part) (fun i ->
                  let sc = find_partition_sc t ~table ~partition:i in
                  Obs.Sys_tables.partition_row ~table_name:table ~partition:i
                    ~spec
                    ~bounds:
                      (Fmt.str "%a" Expr.pp_pred
                         (Partition.constraint_pred part i))
                    ~rows:(Partition.rows part i)
                    ~sc_name:
                      (Option.map
                         (fun (sc : Soft_constraint.t) ->
                           sc.Soft_constraint.name)
                         sc)
                    ~sc_state:
                      (Option.map
                         (fun (sc : Soft_constraint.t) ->
                           Fmt.str "%a" Soft_constraint.pp_state
                             sc.Soft_constraint.state)
                         sc)
                    ~rows_scanned:
                      (Obs.Metrics.counter t.metrics
                         (part_metric "rows_scanned" table i))
                    ~pages_read:
                      (Obs.Metrics.counter t.metrics
                         (part_metric "pages_read" table i))
                    ~fallbacks:
                      (Obs.Metrics.counter t.metrics
                         (part_metric "fallbacks" table i))))
        (Database.partitioned_tables t.db))

let create ?(flags = Opt.Rewrite.all_on) () =
  let db = Database.create () in
  let catalog = Sc_catalog.create () in
  let maintenance = Maintenance.attach db catalog in
  let t =
    {
      db;
      stats = Stats.Runstats.create ();
      catalog;
      maintenance;
      metrics = Obs.Metrics.create ();
      query_log = Obs.Query_log.create ();
      flags;
      cost_params = Opt.Cost.default_params;
      feedback = true;
      feedback_tolerance = Obs.Feedback.default_tolerance;
      plan_cache_rows = (fun () -> []);
      stmt_listeners = [];
    }
  in
  register_sys_tables t;
  t

let db t = t.db
let catalog t = t.catalog
let maintenance t = t.maintenance
let statistics t = t.stats
let metrics t = t.metrics
let query_log t = t.query_log
let set_feedback ?tolerance t on =
  t.feedback <- on;
  Option.iter (fun tol -> t.feedback_tolerance <- tol) tolerance

let set_plan_cache_source t rows = t.plan_cache_rows <- rows

let on_statement t f = t.stmt_listeners <- f :: t.stmt_listeners
let notify_stmt t ev = List.iter (fun f -> f ev) t.stmt_listeners

let planner_env t =
  Opt.Planner.make_env ~params:t.cost_params t.db t.stats

let runstats ?table t =
  match table with
  | None -> Stats.Runstats.runstats_all t.stats t.db
  | Some name ->
      ignore (Stats.Runstats.runstats t.stats (Database.table_exn t.db name))

(* ---- soft constraint installation ---------------------------------------- *)

let install_sc t sc =
  Sc_catalog.add t.catalog sc;
  Maintenance.track_fd t.maintenance sc

(* Install a SOFT-mode declaration from SQL: validate a would-be ASC
   against the data; declared confidences make SSCs directly. *)
let install_soft_declaration t ~name ~table ~(body : Icdef.body)
    ~(declared_confidence : float option) =
  let muts = Sc_catalog.mutations_of t.db table in
  match declared_confidence with
  | Some c when c < 1.0 ->
      install_sc t
        (Soft_constraint.make ~name ~table
           ~kind:(Soft_constraint.Statistical c) ~installed_at_mutations:muts
           (Soft_constraint.Ic_stmt body))
  | _ -> (
      (* candidate ASC: verify against the current state *)
      let ic = Icdef.make ~name ~table body in
      let env = Database.checker_env t.db in
      match Checker.verify env ic with
      | [] ->
          install_sc t
            (Soft_constraint.make ~name ~table ~kind:Soft_constraint.Absolute
               ~installed_at_mutations:muts (Soft_constraint.Ic_stmt body))
      | violations -> (
          (* not absolute: keep as an SSC with the measured confidence
             when the statement is check-shaped *)
          match body with
          | Icdef.Check _ | Icdef.Not_null _ ->
              let rows =
                max 1 (Table.cardinality (Database.table_exn t.db table))
              in
              let c =
                1.0
                -. (float_of_int (List.length violations) /. float_of_int rows)
              in
              install_sc t
                (Soft_constraint.make ~name ~table
                   ~kind:(Soft_constraint.Statistical c)
                   ~installed_at_mutations:muts (Soft_constraint.Ic_stmt body))
          | _ ->
              error
                "constraint %s does not hold (%d violations) and its class \
                 cannot be statistical"
                name (List.length violations)))

(* Mine and install per-segment partition-domain SCs ({!Part.Mine}):
   each non-empty segment's observed band over the partition column
   becomes an absolute, overturnable [Part_stmt].  Anchored on the
   segment's *local* mutation counter, so churn in a sibling shard never
   ages it.  Existing SCs under the same generated names are replaced —
   re-mining refreshes the bands. *)
let mine_partition_domains t ~table =
  match Database.partitioning t.db table with
  | None -> error "table %s is not partitioned" table
  | Some part ->
      let installed =
        List.map
          (fun (c : Part.Mine.candidate) ->
            let name = Printf.sprintf "%s_p%d_domain" table c.Part.Mine.partition in
            if Sc_catalog.find t.catalog name <> None then
              Sc_catalog.drop t.catalog name;
            let sc =
              Soft_constraint.make ~name ~table ~kind:Soft_constraint.Absolute
                ~installed_at_mutations:
                  (Partition.seg_mutations part c.Part.Mine.partition)
                (Soft_constraint.Part_stmt
                   {
                     partition = c.Part.Mine.partition;
                     pred = c.Part.Mine.pred;
                   })
            in
            install_sc t sc;
            sc)
          (Part.Mine.domains t.db ~table)
      in
      installed

(* ---- statement execution --------------------------------------------------- *)

type outcome =
  | Rows of Exec.Executor.result
  | Affected of int
  | Report of Opt.Explain.report
  | Analyzed of Opt.Explain.analysis
  | Done of string

let fresh_constraint_name =
  let counter = ref 0 in
  fun table ->
    incr counter;
    Printf.sprintf "%s_con%d" table !counter

let eval_const_expr (e : Expr.t) : Value.t =
  try Expr.eval [||] e [||]
  with Expr.Binding.Unresolved r ->
    error "non-constant expression references column %s"
      (Fmt.str "%a" Expr.pp_col_ref r)

let add_table_constraint t ~table (con : Sqlfe.Ast.table_constraint) =
  let name =
    Option.value con.Sqlfe.Ast.con_name ~default:(fresh_constraint_name table)
  in
  match con.Sqlfe.Ast.con_mode with
  | Sqlfe.Ast.Mode_enforced ->
      Database.add_constraint t.db
        (Icdef.make ~enforcement:Icdef.Enforced ~name ~table
           con.Sqlfe.Ast.con_body)
  | Sqlfe.Ast.Mode_informational ->
      Database.add_constraint t.db
        (Icdef.make ~enforcement:Icdef.Informational ~name ~table
           con.Sqlfe.Ast.con_body)
  | Sqlfe.Ast.Mode_soft declared_confidence ->
      install_soft_declaration t ~name ~table ~body:con.Sqlfe.Ast.con_body
        ~declared_confidence

(* auto-create a unique index backing a PRIMARY KEY / UNIQUE declaration *)
let back_key_with_index t ~table (con : Sqlfe.Ast.table_constraint) =
  match (con.Sqlfe.Ast.con_mode, con.Sqlfe.Ast.con_body) with
  | ( (Sqlfe.Ast.Mode_enforced | Sqlfe.Ast.Mode_informational),
      (Icdef.Primary_key cols | Icdef.Unique cols) ) ->
      let index_name = Printf.sprintf "%s_key_%s" table (String.concat "_" cols) in
      if Database.find_index_by_name t.db index_name = None then
        ignore
          (Database.create_index t.db ~name:index_name ~table ~columns:cols
             ~unique:(con.Sqlfe.Ast.con_mode = Sqlfe.Ast.Mode_enforced) ())
  | _ -> ()

let matching_rids t ~table pred =
  let tbl = Database.table_exn t.db table in
  let binding = Expr.Binding.of_schema (Table.schema tbl) in
  let keep = Expr.compile_filter binding pred in
  List.rev
    (Table.fold tbl ~init:[] ~f:(fun acc rid row ->
         if keep row then rid :: acc else acc))

(* Some rewrite rules log no constraint attribution (FD simplification,
   hole trimming, unsatisfiability detection): their rewrite context was
   assembled from whole classes of usable absolute SCs.  Guard such plans
   conservatively on every usable absolute SC of the class — an
   over-approximate guard can only cause a spurious fallback, never a
   wrong result. *)
let class_guards t (applied : Opt.Rewrite.applied list) =
  let fired rule =
    List.exists
      (fun (a : Opt.Rewrite.applied) ->
        a.Opt.Rewrite.rule = rule && a.Opt.Rewrite.sc = None)
      applied
  in
  let of_class keep =
    List.filter_map
      (fun (sc : Soft_constraint.t) ->
        if Soft_constraint.is_absolute sc && keep sc.Soft_constraint.statement
        then Some sc.Soft_constraint.name
        else None)
      (Sc_catalog.usable t.catalog)
  in
  let fd = function Soft_constraint.Fd_stmt _ -> true | _ -> false in
  let holes = function Soft_constraint.Holes_stmt _ -> true | _ -> false in
  (if fired "fd_simplification" then of_class fd else [])
  @ (if fired "hole_trimming" then of_class holes else [])
  @
  if fired "unsatisfiable" || fired "unionall_pruning" then
    of_class (fun _ -> true)
  else []

(* Certificate premises that are catalog SCs must also be guarded: a
   result-changing rewrite can rest on more constraints than the one it
   logged as [sc] (e.g. the key witness behind a join elimination may
   itself be an overturnable ASC). *)
let premise_guards t (applied : Opt.Rewrite.applied list) =
  List.concat_map
    (fun (a : Opt.Rewrite.applied) ->
      if Opt.Rewrite.delta_changes_results a.Opt.Rewrite.delta then
        List.filter
          (fun name -> Sc_catalog.find t.catalog name <> None)
          a.Opt.Rewrite.premises
      else [])
    applied

let optimize ?flags t (q : Sqlfe.Ast.query) =
  let report = Opt.Explain.optimize (rewrite_ctx ?flags t) (planner_env t) q in
  match
    class_guards t report.Opt.Explain.applied
    @ premise_guards t report.Opt.Explain.applied
  with
  | [] -> report
  | extra ->
      {
        report with
        Opt.Explain.guards =
          List.sort_uniq String.compare (report.Opt.Explain.guards @ extra);
      }

(* ---- cardinality feedback -------------------------------------------------- *)

let rec twin_names acc (l : Opt.Logical.t) =
  match l with
  | Opt.Logical.Block b ->
      List.fold_left
        (fun acc (p : Opt.Logical.pred_item) ->
          match p.Opt.Logical.origin with
          | Opt.Logical.Twin sc -> if List.mem sc acc then acc else sc :: acc
          | _ -> acc)
        acc b.Opt.Logical.preds
  | Opt.Logical.Union ts -> List.fold_left twin_names acc ts

(* Confidence recalibration mutates the SC catalog and the maintenance
   queue *from the read path*: it runs when a query finishes.  Under the
   server's worker pool many read queries finish concurrently, so the
   adjust branch is serialized behind one mutex — data and catalog
   structure mutations proper stay on the single-writer path (lib/srv),
   and field-level confidence updates from readers are funnelled here. *)
let recalibration_lock = Mutex.create ()

(* Per-twin observation: the measured coverage of the SSC's statement
   against current data is the observed selectivity of the twinned
   predicate class.  Recalibration (when enabled) pulls the catalog
   confidence toward it and may escalate to the repair queue. *)
let observe_twin t sc_name =
  match Sc_catalog.find t.catalog sc_name with
  | None -> None
  | Some sc -> (
      let stored =
        match sc.Soft_constraint.kind with
        | Soft_constraint.Statistical c -> c
        | Soft_constraint.Absolute -> 1.0
      in
      match Maintenance.measured_confidence t.db sc with
      | None -> None
      | Some observed ->
          let adjusted =
            if not t.feedback then None
            else
              match
                Obs.Feedback.recalibrate ~tolerance:t.feedback_tolerance
                  ~stored ~observed ()
              with
              | Obs.Feedback.Keep -> None
              | Obs.Feedback.Adjust { confidence; refresh } ->
                  (* @acquires core.recalibration while srv.session db.rwlock *)
                  Obs.Lockdep.acquire "core.recalibration";
                  Mutex.lock recalibration_lock;
                  Fun.protect
                    ~finally:(fun () ->
                      Mutex.unlock recalibration_lock;
                      Obs.Lockdep.release "core.recalibration")
                    (fun () ->
                      Sc_catalog.set_kind t.catalog sc
                        (Soft_constraint.Statistical confidence);
                      Sc_catalog.set_anchor t.catalog sc
                        (Sc_catalog.mutations_of t.db
                           sc.Soft_constraint.table);
                      Maintenance.record t.maintenance sc_name
                        (Printf.sprintf
                           "confidence recalibrated %.4f -> %.4f (observed \
                            %.4f)"
                           stored confidence observed);
                      Obs.Metrics.incr t.metrics "feedback.recalibrations";
                      if refresh then
                        Maintenance.queue_refresh t.maintenance sc_name;
                      Some confidence)
          in
          Some { Obs.Query_log.sc = sc_name; stored; observed; adjusted })

let record_feedback ?(fell_back = false) t (report : Opt.Explain.report)
    (result : Exec.Executor.result) =
  let m = t.metrics in
  let c = result.Exec.Executor.counters in
  Obs.Metrics.incr m "queries.executed";
  Obs.Metrics.incr ~by:c.Exec.Operators.Counters.rows_scanned m
    "exec.rows_scanned";
  Obs.Metrics.incr ~by:c.Exec.Operators.Counters.pages_read m
    "exec.pages_read";
  Obs.Metrics.incr ~by:c.Exec.Operators.Counters.index_probes m
    "exec.index_probes";
  Obs.Metrics.incr ~by:c.Exec.Operators.Counters.rows_output m
    "exec.rows_output";
  List.iter
    (fun (table, partition, rows, pages) ->
      Obs.Metrics.incr ~by:rows m (part_metric "rows_scanned" table partition);
      Obs.Metrics.incr ~by:pages m (part_metric "pages_read" table partition))
    (Exec.Operators.Counters.partition_counts c);
  let rewrites =
    List.sort_uniq String.compare
      (List.map
         (fun (a : Opt.Rewrite.applied) -> a.Opt.Rewrite.rule)
         report.Opt.Explain.applied)
  in
  List.iter (fun r -> Obs.Metrics.incr m ("rewrite." ^ r)) rewrites;
  let actual = List.length result.Exec.Executor.rows in
  let estimated = report.Opt.Explain.estimated_cardinality in
  Obs.Metrics.observe m "query.q_error"
    (Obs.Feedback.q_error ~estimated ~actual);
  let twins =
    List.filter_map (observe_twin t)
      (List.rev (twin_names [] report.Opt.Explain.rewritten))
  in
  ignore
    (Obs.Query_log.add ~fell_back t.query_log
       ~sql:(Sqlfe.Printer.query_to_string report.Opt.Explain.original)
       ~estimated_rows:estimated ~actual_rows:actual ~rewrites ~twins)

(* A guard holds at execution time if the constraint it names is still a
   declared hard/informational IC, or a usable soft constraint, or an
   exception-backed ASC whose exception table still exists (violations
   are stored there, so the exception-union rewrite stays exact).

   Guards in the "idx:<name>" namespace protect index-backed rewrites
   instead: they hold while the named index still exists and is readable,
   so DROP INDEX or a mid-flight demotion degrades the plan to its
   index-free backup rather than probing a stale or half-built tree. *)
let guard_ok t name =
  match String.length name > 4 && String.sub name 0 4 = "idx:" with
  | true -> (
      let index = String.sub name 4 (String.length name - 4) in
      match Database.find_index_by_name t.db index with
      | Some idx -> Index.is_readable idx
      | None -> false)
  | false -> (
  match Database.find_constraint t.db name with
  | Some _ -> true
  | None -> (
      match Sc_catalog.find t.catalog name with
      | None -> false
      | Some sc -> (
          Soft_constraint.is_usable sc
          ||
          match Sc_catalog.exception_table_for t.catalog name with
          | Some table -> Database.find_table t.db table <> None
          | None -> false)))

(* One guarded fallback happened on the strength of [failed] guard
   names: count it, and attribute it to every partition whose domain SC
   is among them.  Shared with {!Plan_cache}, whose prepared plans fall
   back through their own validity check. *)
let note_guard_fallback t failed =
  Obs.Metrics.incr t.metrics "sc_guard_fallbacks";
  List.iter
    (fun name ->
      match Sc_catalog.find t.catalog name with
      | Some sc -> (
          match sc.Soft_constraint.statement with
          | Soft_constraint.Part_stmt p ->
              Obs.Metrics.incr t.metrics
                (part_metric "fallbacks" sc.Soft_constraint.table p.partition)
          | _ -> ())
      | None -> ())
    failed

(* Execute an optimized report with its guards checked at open: if an SC
   a rewrite relied on was overturned since planning, degrade to the
   rewrite-free backup plan (§4.1's flag-and-revert). *)
let execute_report t (report : Opt.Explain.report) =
  let result, fell_back =
    Obs.Metrics.time t.metrics "time.query_execution" (fun () ->
        Exec.Executor.run_guarded t.db ~guards:report.Opt.Explain.guards
          ~guard_ok:(guard_ok t) ~backup:report.Opt.Explain.backup_plan
          report.Opt.Explain.plan)
  in
  if fell_back then
    note_guard_fallback t
      (List.filter
         (fun name -> not (guard_ok t name))
         report.Opt.Explain.guards);
  (result, fell_back)

let run_query ?flags t (q : Sqlfe.Ast.query) =
  let report = optimize ?flags t q in
  let result, fell_back = execute_report t report in
  record_feedback ~fell_back t report result;
  result

(* EXPLAIN ANALYZE: instrumented execution with per-node annotation; the
   run also feeds the metrics/feedback loop like any other query. *)
let analyze ?flags t (q : Sqlfe.Ast.query) =
  let analysis =
    Obs.Metrics.time t.metrics "time.query_execution" (fun () ->
        Opt.Explain.analyze (rewrite_ctx ?flags t) (planner_env t) q)
  in
  record_feedback t analysis.Opt.Explain.a_report analysis.Opt.Explain.result;
  analysis

let exec_statement_inner t (stmt : Sqlfe.Ast.statement) : outcome =
  match stmt with
  | Sqlfe.Ast.Query q -> Rows (run_query t q)
  | Sqlfe.Ast.Explain q -> Report (optimize t q)
  | Sqlfe.Ast.Explain_analyze q -> Analyzed (analyze t q)
  | Sqlfe.Ast.Create_table { name; cols; constraints } ->
      let schema =
        Schema.make name
          (List.map
             (fun (c : Sqlfe.Ast.col_def) ->
               Schema.column ~nullable:(not c.Sqlfe.Ast.col_not_null)
                 c.Sqlfe.Ast.col_name c.Sqlfe.Ast.col_type)
             cols)
      in
      ignore (Database.create_table t.db schema);
      List.iter
        (fun con ->
          back_key_with_index t ~table:name con;
          add_table_constraint t ~table:name con)
        constraints;
      Done (Printf.sprintf "created table %s" name)
  | Sqlfe.Ast.Drop_table name ->
      Database.drop_table t.db name;
      Done (Printf.sprintf "dropped table %s" name)
  | Sqlfe.Ast.Drop_index name ->
      Database.drop_index t.db name;
      Done (Printf.sprintf "dropped index %s" name)
  | Sqlfe.Ast.Create_index { index_name; table; columns; unique; online } ->
      if online then (
        (* only the write-only shell: the statement never blocks readers.
           The caller drives the backfill — Idx.Lifecycle.step under the
           session write lock, or synchronously via the string APIs. *)
        ignore
          (Database.create_index_shell t.db ~name:index_name ~table ~columns
             ~unique ());
        Done (Printf.sprintf "created index %s (online, backfill pending)"
                index_name))
      else (
        ignore
          (Database.create_index t.db ~name:index_name ~table ~columns ~unique
             ());
        Done (Printf.sprintf "created index %s" index_name))
  | Sqlfe.Ast.Alter_add_constraint { table; con } ->
      back_key_with_index t ~table con;
      add_table_constraint t ~table con;
      Done "constraint added"
  | Sqlfe.Ast.Alter_partition_by { table; spec } ->
      (* Declaration only: partition-domain SCs are data-dependent, so
         they are installed separately ({!mine_partition_domains}) and
         logged as catalog transitions, never regenerated by DDL replay. *)
      ignore (Database.declare_partitioning t.db ~table spec);
      Done
        (Printf.sprintf "partitioned %s by %s" table
           (Partition.spec_to_string spec))
  | Sqlfe.Ast.Drop_constraint { table = _; name } -> (
      match Database.find_constraint t.db name with
      | Some _ ->
          Database.drop_constraint t.db name;
          Done (Printf.sprintf "dropped constraint %s" name)
      | None -> (
          match Sc_catalog.find t.catalog name with
          | Some _ ->
              Sc_catalog.drop t.catalog name;
              Done (Printf.sprintf "dropped soft constraint %s" name)
          | None -> error "no such constraint: %s" name))
  | Sqlfe.Ast.Create_exception_table { name; constraint_name } -> (
      match Sc_catalog.find t.catalog constraint_name with
      | None -> error "no such soft constraint: %s" constraint_name
      | Some sc ->
          let handle =
            Exception_table.install t.db ~sc ~table_name:name
          in
          Sc_catalog.register_exception_table t.catalog ~constraint_name
            ~table:handle.Exception_table.exception_table;
          Done (Printf.sprintf "exception table %s tracks %s" name
                  constraint_name))
  | Sqlfe.Ast.Insert { table; columns; rows } ->
      let tbl = Database.table_exn t.db table in
      let schema = Table.schema tbl in
      let positions =
        match columns with
        | None -> List.init (Schema.arity schema) Fun.id
        | Some cols -> List.map (Schema.index_exn schema) cols
      in
      let count = ref 0 in
      List.iter
        (fun exprs ->
          if List.length exprs <> List.length positions then
            error "INSERT arity mismatch for table %s" table;
          let row = Array.make (Schema.arity schema) Value.Null in
          List.iter2
            (fun pos e -> row.(pos) <- eval_const_expr e)
            positions exprs;
          ignore (Database.insert t.db ~table (Tuple.of_array row));
          incr count)
        rows;
      Affected !count
  | Sqlfe.Ast.Delete { table; where } ->
      let rids = matching_rids t ~table where in
      List.iter (fun rid -> ignore (Database.delete t.db ~table rid)) rids;
      Affected (List.length rids)
  | Sqlfe.Ast.Update { table; assignments; where } ->
      let tbl = Database.table_exn t.db table in
      let schema = Table.schema tbl in
      let binding = Expr.Binding.of_schema schema in
      let compiled =
        List.map
          (fun (c, e) -> (Schema.index_exn schema c, Expr.compile binding e))
          assignments
      in
      let rids = matching_rids t ~table where in
      List.iter
        (fun rid ->
          let before = Table.get_exn tbl rid in
          let after = Tuple.copy before in
          List.iter (fun (pos, f) -> after.(pos) <- f before) compiled;
          Database.update t.db ~table rid after)
        rids;
      Affected (List.length rids)
  | Sqlfe.Ast.Runstats table ->
      runstats ?table t;
      Done "statistics collected"

(* Statement execution framed by the [Stmt_started]/[Stmt_finished]
   hooks, which the WAL link uses for autocommit boundaries. *)
let exec_statement t (stmt : Sqlfe.Ast.statement) : outcome =
  notify_stmt t (Stmt_started stmt);
  match exec_statement_inner t stmt with
  | outcome ->
      notify_stmt t (Stmt_finished (stmt, true));
      outcome
  | exception e ->
      notify_stmt t (Stmt_finished (stmt, false));
      raise e

(* The string APIs have no session loop to drive an online backfill, so
   a [CREATE INDEX ... ONLINE] finishes synchronously after the statement:
   the DDL itself (and its WAL record) covers only the shell, then the
   build runs to completion and its lifecycle transitions surface through
   {!Database.on_index_state} — which is exactly what the WAL's Idx_state
   records capture, so replay reproduces shell + transitions, never a
   second backfill. *)
let finish_online_build t (stmt : Sqlfe.Ast.statement) =
  match stmt with
  | Sqlfe.Ast.Create_index { index_name; online = true; _ } -> (
      match Database.find_index_by_name t.db index_name with
      | Some idx when Index.state idx = Index.Write_only ->
          ignore (Idx.Lifecycle.run t.db idx : Idx.Lifecycle.outcome)
      | _ -> ())
  | _ -> ()

let exec t sql =
  let stmt = Sqlfe.Parser.parse_statement sql in
  let outcome = exec_statement t stmt in
  finish_online_build t stmt;
  outcome

let exec_script t sql =
  List.map
    (fun stmt ->
      let outcome = exec_statement t stmt in
      finish_online_build t stmt;
      outcome)
    (Sqlfe.Parser.parse_script sql)

(* Run a query string and return the rows. *)
let query ?flags t sql =
  match Sqlfe.Parser.parse_statement sql with
  | Sqlfe.Ast.Query q -> run_query ?flags t q
  | _ -> error "expected a SELECT statement"

let explain ?flags t sql =
  match Sqlfe.Parser.parse_statement sql with
  | Sqlfe.Ast.Query q | Sqlfe.Ast.Explain q -> optimize ?flags t q
  | _ -> error "expected a SELECT statement"

(* Convenience oracle used everywhere in tests and benches: the same
   query with the whole soft-constraint machinery off. *)
let query_baseline t sql = query ~flags:Opt.Rewrite.all_off t sql
