(* ASC/SSC maintenance (paper §4.1–§4.3).

   For each soft constraint a [policy] decides what happens when a
   mutation violates it:

   - [Drop]          — the paper's "maintenance policy of last resort":
                       the SC flips to [Violated] and stops being used;
   - [Sync_repair]   — repair at violation time by *widening* the
                       statement (bands grow to cover the new row; hole
                       rectangles overlapping the new value are discarded,
                       the paper's conservative §4.3 tactic);
   - [Async_repair]  — flip to [Violated], queue the SC, and let
                       [run_repairs] re-mine it from current data later
                       ("dropped from active, and queued for repair").

   SSCs are never checked synchronously (their whole point); their
   confidences decay via {!Currency} and are restored by
   [refresh_statistics], the RUNSTATS-analogue. *)

open Rel

let log_src = Logs.Src.create "softdb.maintenance" ~doc:"soft-constraint maintenance"

module Log = (val Logs.src_log log_src)

type policy = Drop | Sync_repair | Async_repair

type event = {
  sc_name : string;
  action : string;
  at_mutations : int;
}

(* @guarded-by db.rwlock — mutated by FD maintenance inside write
   statements only *)
type fd_state = {
  map : (Tuple.t, (Value.t * int ref)) Hashtbl.t;
  lhs_pos : int list;
  rhs_pos : int;
}

(* @guarded-by db.rwlock — the single-writer rule; confidence
   recalibration additionally funnels read-path event/queue appends
   through core.recalibration *)
type t = {
  db : Database.t;
  catalog : Sc_catalog.t;
  mutable policies : (string * policy) list;
  mutable repair_queue : string list;
  mutable events : event list;
  fd_states : (string, fd_state) Hashtbl.t;
  mutable default_policy : policy;
}

let norm = String.lowercase_ascii

(* Named crash/IO-error sites for the fault harness; {!Recovery.attach}
   declares them so the crash-matrix test can iterate the full set. *)
let fault_points =
  [ "maintenance.violation"; "maintenance.repair"; "maintenance.refresh" ]

let policy_of t name =
  Option.value (List.assoc_opt (norm name) t.policies)
    ~default:t.default_policy

let set_policy t name policy =
  t.policies <- (norm name, policy) :: List.remove_assoc (norm name) t.policies

let record t sc_name action =
  let at_mutations =
    match Sc_catalog.find t.catalog sc_name with
    | Some sc -> Sc_catalog.mutations_of t.db sc.Soft_constraint.table
    | None -> 0
  in
  Log.debug (fun m -> m "%s: %s" sc_name action);
  t.events <- { sc_name; action; at_mutations } :: t.events

let events t = List.rev t.events

(* ---- FD incremental state ---------------------------------------------- *)

let build_fd_state db (sc : Soft_constraint.t) (fd : Mining.Fd_mine.fd) =
  match Database.find_table db sc.Soft_constraint.table with
  | None -> None
  | Some tbl ->
      let schema = Table.schema tbl in
      let lhs_pos = List.map (Schema.index_exn schema) fd.Mining.Fd_mine.lhs in
      let rhs_pos = Schema.index_exn schema fd.Mining.Fd_mine.rhs in
      let map = Hashtbl.create 1024 in
      let consistent = ref true in
      Table.iter tbl ~f:(fun row ->
          if !consistent then begin
            let key = Tuple.make (List.map (Tuple.get row) lhs_pos) in
            let v = Tuple.get row rhs_pos in
            match Hashtbl.find_opt map key with
            | None -> Hashtbl.add map key (v, ref 1)
            | Some (v0, n) ->
                if Value.equal_total v0 v then incr n else consistent := false
          end);
      if !consistent then Some { map; lhs_pos; rhs_pos } else None

(* ---- violation detection per statement ---------------------------------- *)

let row_violates db (sc : Soft_constraint.t) row =
  match sc.Soft_constraint.statement with
  | Soft_constraint.Part_stmt { partition; pred } -> (
      (* partition-local: a row that routes to a sibling segment cannot
         violate this SC, so one hot shard's churn never overturns the
         other shards' domain constraints *)
      match
        ( Database.find_table db sc.Soft_constraint.table,
          Database.partitioning db sc.Soft_constraint.table )
      with
      | Some tbl, Some part when Partition.route part row = partition ->
          Expr.check_violated
            (Expr.Binding.of_schema (Table.schema tbl))
            pred row
      | _ -> false)
  | _ -> (
      match Soft_constraint.check_pred sc with
      | Some p -> (
          match Database.find_table db sc.Soft_constraint.table with
          | Some tbl ->
              Expr.check_violated
                (Expr.Binding.of_schema (Table.schema tbl))
                p row
          | None -> false)
      | None -> false)

(* Statements testable one row at a time by [row_violates]: check shapes
   plus partition-domain statements (whose test routes first). *)
let row_checkable (sc : Soft_constraint.t) =
  match sc.Soft_constraint.statement with
  | Soft_constraint.Part_stmt _ -> true
  | _ -> Soft_constraint.check_pred sc <> None

(* ---- repairs -------------------------------------------------------------- *)

let widen_diff (band : Mining.Diff_band.band) diff =
  {
    band with
    Mining.Diff_band.d_min = min band.Mining.Diff_band.d_min diff;
    d_max = max band.Mining.Diff_band.d_max diff;
  }

let numeric v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | _ -> None

(* Try to repair [sc] in place so the new [row] no longer violates it.
   Returns false when this statement class cannot be widened. *)
let sync_repair t (sc : Soft_constraint.t) row =
  let db = t.db in
  match Database.find_table db sc.Soft_constraint.table with
  | None -> false
  | Some tbl -> (
      let schema = Table.schema tbl in
      let value col = Tuple.get row (Schema.index_exn schema col) in
      match sc.Soft_constraint.statement with
      | Soft_constraint.Diff_stmt (d, band) -> (
          match
            ( numeric (value d.Mining.Diff_band.col_hi),
              numeric (value d.Mining.Diff_band.col_lo) )
          with
          | Some h, Some l ->
              Sc_catalog.set_statement t.catalog sc
                (Soft_constraint.Diff_stmt (d, widen_diff band (h -. l)));
              true
          | _ -> false)
      | Soft_constraint.Corr_stmt (c, band) -> (
          match
            ( numeric (value c.Mining.Correlation.col_a),
              numeric (value c.Mining.Correlation.col_b) )
          with
          | Some a, Some b ->
              let resid =
                Float.abs
                  (a -. ((c.Mining.Correlation.k *. b) +. c.Mining.Correlation.b))
              in
              Sc_catalog.set_statement t.catalog sc
                (Soft_constraint.Corr_stmt
                   ( c,
                     {
                       band with
                       Mining.Correlation.eps =
                         max band.Mining.Correlation.eps resid;
                     } ));
              true
          | _ -> false)
      | Soft_constraint.Ic_stmt (Icdef.Check p) -> (
          (* widenable when the check is a single-column BETWEEN range *)
          match p with
          | Expr.Between (Expr.Col r, Expr.Const lo, Expr.Const hi) ->
              let v = value r.Expr.col in
              if Value.is_null v then true
              else begin
                let lo' =
                  if Value.compare_total v lo < 0 then v else lo
                and hi' =
                  if Value.compare_total v hi > 0 then v else hi
                in
                Sc_catalog.set_statement t.catalog sc
                  (Soft_constraint.Ic_stmt
                     (Icdef.Check
                        (Expr.Between
                           (Expr.Col r, Expr.Const lo', Expr.Const hi'))));
                true
              end
          | _ -> false)
      | Soft_constraint.Part_stmt { partition; pred } -> (
          (* widenable like a check when the partition-domain statement is
             a single-column BETWEEN *)
          match pred with
          | Expr.Between (Expr.Col r, Expr.Const lo, Expr.Const hi) ->
              let v = value r.Expr.col in
              if Value.is_null v then true
              else begin
                let lo' = if Value.compare_total v lo < 0 then v else lo
                and hi' = if Value.compare_total v hi > 0 then v else hi in
                Sc_catalog.set_statement t.catalog sc
                  (Soft_constraint.Part_stmt
                     {
                       partition;
                       pred =
                         Expr.Between (Expr.Col r, Expr.Const lo', Expr.Const hi');
                     });
                true
              end
          | _ -> false)
      | Soft_constraint.Ic_stmt _ | Soft_constraint.Fd_stmt _
      | Soft_constraint.Holes_stmt _ ->
          false)

(* Conservative hole shrinking on insert (paper §4.3): assume the new
   value violates every rectangle its coordinate touches. *)
let shrink_holes (h : Mining.Join_holes.t) ~axis ~at =
  let keep (r : Mining.Join_holes.rect) =
    match axis with
    | `A -> not (at >= r.Mining.Join_holes.a_lo && at < r.Mining.Join_holes.a_hi)
    | `B -> not (at >= r.Mining.Join_holes.b_lo && at < r.Mining.Join_holes.b_hi)
  in
  { h with Mining.Join_holes.rects = List.filter keep h.Mining.Join_holes.rects }

let handle_violation t (sc : Soft_constraint.t) row =
  Obs.Fault.point "maintenance.violation";
  Sc_catalog.set_violations t.catalog sc
    (sc.Soft_constraint.violation_count + 1);
  match policy_of t sc.Soft_constraint.name with
  | Drop ->
      Sc_catalog.set_state t.catalog sc Soft_constraint.Violated;
      record t sc.Soft_constraint.name "dropped on violation"
  | Sync_repair ->
      if sync_repair t sc row then begin
        Sc_catalog.set_anchor t.catalog sc
          (Sc_catalog.drift_counter t.db sc);
        record t sc.Soft_constraint.name "repaired synchronously (widened)"
      end
      else begin
        Sc_catalog.set_state t.catalog sc Soft_constraint.Violated;
        record t sc.Soft_constraint.name
          "sync repair impossible; dropped on violation"
      end
  | Async_repair ->
      Sc_catalog.set_state t.catalog sc Soft_constraint.Violated;
      t.repair_queue <- t.repair_queue @ [ sc.Soft_constraint.name ];
      record t sc.Soft_constraint.name "queued for asynchronous repair"

(* ---- the mutation listener ------------------------------------------------ *)

let on_row_arrival t table row =
  List.iter
    (fun (sc : Soft_constraint.t) ->
      (* probation SCs (§3.2) are monitored but never exploited: count
         their violations without invoking a repair policy *)
      if
        sc.Soft_constraint.state = Soft_constraint.Probation
        && Soft_constraint.is_absolute sc
      then begin
        if row_checkable sc && row_violates t.db sc row then begin
          Sc_catalog.set_violations t.catalog sc
            (sc.Soft_constraint.violation_count + 1);
          record t sc.Soft_constraint.name "violation during probation"
        end
      end;
      if Soft_constraint.is_usable sc && Soft_constraint.is_absolute sc then begin
        (* check-shaped and partition-domain statements: direct row test *)
        if row_checkable sc && row_violates t.db sc row then
          handle_violation t sc row;
        (* FD statements: incremental map *)
        match sc.Soft_constraint.statement with
        | Soft_constraint.Fd_stmt _ -> (
            match Hashtbl.find_opt t.fd_states (norm sc.Soft_constraint.name) with
            | None -> ()
            | Some st -> (
                let key = Tuple.make (List.map (Tuple.get row) st.lhs_pos) in
                let v = Tuple.get row st.rhs_pos in
                match Hashtbl.find_opt st.map key with
                | None -> Hashtbl.add st.map key (v, ref 1)
                | Some (v0, n) ->
                    if Value.equal_total v0 v then incr n
                    else begin
                      Hashtbl.remove t.fd_states (norm sc.Soft_constraint.name);
                      handle_violation t sc row
                    end))
        | Soft_constraint.Holes_stmt h -> (
            (* conservative §4.3 shrink on any new value along either axis *)
            match Database.find_table t.db table with
            | None -> ()
            | Some tbl ->
                let schema = Table.schema tbl in
                let try_axis axis col =
                  match Schema.find_index schema col with
                  | Some i -> (
                      match numeric (Tuple.get row i) with
                      | Some at ->
                          let h' = shrink_holes h ~axis ~at in
                          if
                            List.length h'.Mining.Join_holes.rects
                            <> List.length h.Mining.Join_holes.rects
                          then begin
                            Sc_catalog.set_statement t.catalog sc
                              (Soft_constraint.Holes_stmt h');
                            record t sc.Soft_constraint.name
                              "holes conservatively shrunk on insert"
                          end
                      | None -> ())
                  | None -> ()
                in
                if norm table = norm h.Mining.Join_holes.left_table then
                  try_axis `A h.Mining.Join_holes.left_col
                else if norm table = norm h.Mining.Join_holes.right_table then
                  try_axis `B h.Mining.Join_holes.right_col)
        | _ -> ()
      end)
    (Sc_catalog.on_table t.catalog table
    @ (* hole SCs are registered under their left table but react to both *)
    List.filter
      (fun (sc : Soft_constraint.t) ->
        match sc.Soft_constraint.statement with
        | Soft_constraint.Holes_stmt h ->
            norm h.Mining.Join_holes.right_table = norm table
            && norm sc.Soft_constraint.table <> norm table
        | _ -> false)
      (Sc_catalog.all t.catalog))

let on_row_removal _t _table _row =
  (* deletes cannot violate check-shaped or hole statements; FD maps shrink *)
  ()

let attach ?(default_policy = Drop) db catalog =
  let t =
    {
      db;
      catalog;
      policies = [];
      repair_queue = [];
      events = [];
      fd_states = Hashtbl.create 8;
      default_policy;
    }
  in
  Database.on_mutation db (fun m ->
      match m with
      | Database.Inserted { table; row; _ } -> on_row_arrival t table row
      | Database.Updated { table; after; before; _ } ->
          (* treat as removal + arrival for FD maps; check shapes only need
             the after image *)
          on_row_removal t table before;
          on_row_arrival t table after
      | Database.Deleted { table; row; _ } -> on_row_removal t table row);
  t

(* FD maps are built on demand when an FD SC is installed. *)
let track_fd t (sc : Soft_constraint.t) =
  match sc.Soft_constraint.statement with
  | Soft_constraint.Fd_stmt fd -> (
      match build_fd_state t.db sc fd with
      | Some st -> Hashtbl.replace t.fd_states (norm sc.Soft_constraint.name) st
      | None ->
          Sc_catalog.set_state t.catalog sc Soft_constraint.Violated;
          record t sc.Soft_constraint.name "FD does not hold at install time")
  | _ -> ()

(* ---- asynchronous repair --------------------------------------------------- *)

let remine t (sc : Soft_constraint.t) =
  match Database.find_table t.db sc.Soft_constraint.table with
  | None -> false
  | Some tbl -> (
      match sc.Soft_constraint.statement with
      | Soft_constraint.Diff_stmt (d, band) -> (
          match
            Mining.Diff_band.mine
              ~confidences:[ band.Mining.Diff_band.confidence ]
              tbl ~col_hi:d.Mining.Diff_band.col_hi
              ~col_lo:d.Mining.Diff_band.col_lo
          with
          | Some d' -> (
              match
                Mining.Diff_band.band_with d'
                  ~confidence:band.Mining.Diff_band.confidence
              with
              | Some band' ->
                  Sc_catalog.set_statement t.catalog sc
                    (Soft_constraint.Diff_stmt (d', band'));
                  true
              | None -> false)
          | None -> false)
      | Soft_constraint.Corr_stmt (c, band) -> (
          match
            Mining.Correlation.mine
              ~confidences:[ band.Mining.Correlation.confidence ]
              ~max_selectivity:1.0 tbl ~col_a:c.Mining.Correlation.col_a
              ~col_b:c.Mining.Correlation.col_b
          with
          | Some c' -> (
              match
                Mining.Correlation.band_with c'
                  ~confidence:band.Mining.Correlation.confidence
              with
              | Some band' ->
                  Sc_catalog.set_statement t.catalog sc
                    (Soft_constraint.Corr_stmt (c', band'));
                  true
              | None -> false)
          | None -> false)
      | Soft_constraint.Fd_stmt fd ->
          if Mining.Fd_mine.holds tbl fd then begin
            track_fd t sc;
            true
          end
          else false
      | Soft_constraint.Ic_stmt body ->
          let ic =
            Icdef.make ~name:sc.Soft_constraint.name
              ~table:sc.Soft_constraint.table body
          in
          Checker.holds (Database.checker_env t.db) ic
      | Soft_constraint.Holes_stmt h -> (
          match
            ( Database.find_table t.db h.Mining.Join_holes.left_table,
              Database.find_table t.db h.Mining.Join_holes.right_table )
          with
          | Some left, Some right -> (
              match
                Mining.Join_holes.mine ~grid:h.Mining.Join_holes.grid ~left
                  ~right ~join_left:h.Mining.Join_holes.join_left
                  ~join_right:h.Mining.Join_holes.join_right
                  ~left_col:h.Mining.Join_holes.left_col
                  ~right_col:h.Mining.Join_holes.right_col ()
              with
              | Some h' ->
                  Sc_catalog.set_statement t.catalog sc
                    (Soft_constraint.Holes_stmt h');
                  true
              | None -> false)
          | _ -> false)
      | Soft_constraint.Part_stmt { partition; pred } -> (
          (* re-verify the statement against the segment's current rows;
             siblings are never read *)
          match Database.partitioning t.db sc.Soft_constraint.table with
          | None -> false
          | Some part ->
              let binding = Expr.Binding.of_schema (Table.schema tbl) in
              List.for_all
                (fun rid ->
                  match Table.get tbl rid with
                  | None -> true
                  | Some row -> not (Expr.check_violated binding pred row))
                (Partition.members part partition)))

let run_repairs t =
  let queue = t.repair_queue in
  t.repair_queue <- [];
  List.iter
    (fun name ->
      match Sc_catalog.find t.catalog name with
      | None -> ()
      | Some sc ->
          Obs.Fault.point "maintenance.repair";
          if remine t sc then begin
            Sc_catalog.set_state t.catalog sc Soft_constraint.Active;
            Sc_catalog.set_anchor t.catalog sc
              (Sc_catalog.drift_counter t.db sc);
            record t name "asynchronously repaired (re-mined)"
          end
          else begin
            Sc_catalog.set_state t.catalog sc Soft_constraint.Dropped;
            record t name "asynchronous repair failed; dropped"
          end)
    queue

(* ---- probation (paper §3.2) ------------------------------------------------ *)

(* "SCs might be inexpensively maintained … but not employed over a
   probationary period to assess their likely utility."  A constraint in
   [Probation] is monitored by the violation listeners (its counter
   advances) but is invisible to the optimizer; [promote_survivors]
   activates the ones that survived [after] mutations of their table with
   no violation, and drops the rest once judged. *)
let promote_survivors ?(after = 100) t =
  let promoted = ref [] and rejected = ref [] in
  List.iter
    (fun (sc : Soft_constraint.t) ->
      if sc.Soft_constraint.state = Soft_constraint.Probation then begin
        let observed =
          Sc_catalog.mutations_of t.db sc.Soft_constraint.table
          - sc.Soft_constraint.installed_at_mutations
        in
        if sc.Soft_constraint.violation_count > 0 then begin
          Sc_catalog.set_state t.catalog sc Soft_constraint.Dropped;
          record t sc.Soft_constraint.name
            "dropped at end of probation (violations observed)";
          rejected := sc :: !rejected
        end
        else if observed >= after then begin
          Sc_catalog.set_state t.catalog sc Soft_constraint.Active;
          record t sc.Soft_constraint.name "promoted from probation";
          promoted := sc :: !promoted
        end
      end)
    (Sc_catalog.all t.catalog);
  (List.rev !promoted, List.rev !rejected)

(* ---- SSC statistics refresh (the periodic "bring up to date" of §1) ------- *)

(* Measured confidence of a statement against the current data — band
   coverage, FD agreement, check satisfaction.  [None] when the statement
   class has no scalar measure (or the table is gone).  Also the
   "observed selectivity" the cardinality-feedback loop compares against
   the stored confidence. *)
let measured_confidence db (sc : Soft_constraint.t) =
  match Database.find_table db sc.Soft_constraint.table with
  | None -> None
  | Some tbl -> (
      match sc.Soft_constraint.statement with
      | Soft_constraint.Diff_stmt (d, band) ->
          Some (Mining.Diff_band.coverage tbl d band)
      | Soft_constraint.Corr_stmt (c, band) ->
          Some
            (Mining.Correlation.coverage tbl c
               ~eps:band.Mining.Correlation.eps)
      | Soft_constraint.Fd_stmt fd -> Some (Mining.Fd_mine.confidence tbl fd)
      | Soft_constraint.Ic_stmt (Icdef.Check p) ->
          let binding = Expr.Binding.of_schema (Table.schema tbl) in
          let total = ref 0 and ok = ref 0 in
          Table.iter tbl ~f:(fun row ->
              incr total;
              if not (Expr.check_violated binding p row) then incr ok);
          if !total = 0 then Some 1.0
          else Some (float_of_int !ok /. float_of_int !total)
      | _ -> None)

let refresh_statistics t =
  Obs.Fault.point "maintenance.refresh";
  List.iter
    (fun (sc : Soft_constraint.t) ->
      if not (Soft_constraint.is_absolute sc) then begin
        match measured_confidence t.db sc with
        | Some c ->
            Sc_catalog.set_kind t.catalog sc (Soft_constraint.Statistical c);
            Sc_catalog.set_anchor t.catalog sc
              (Sc_catalog.drift_counter t.db sc);
            record t sc.Soft_constraint.name
              (Printf.sprintf "statistics refreshed: confidence %.4f" c)
        | None -> ()
      end)
    (Sc_catalog.all t.catalog)

(* ---- feedback hooks -------------------------------------------------------- *)

(* Flag [name] for a statistics-style refresh through the existing repair
   queue (deduplicated).  Used by the cardinality-feedback loop when an
   observed selectivity contradicts the stored confidence badly. *)
let queue_refresh t name =
  if not (List.exists (fun n -> norm n = norm name) t.repair_queue) then begin
    t.repair_queue <- t.repair_queue @ [ name ];
    record t name "queued for refresh (cardinality feedback)"
  end

let repair_queue t = t.repair_queue
