(* Crash-safe durability: the link between a live {!Softdb.t} and a
   write-ahead log, plus checkpointing and replay.

   The engine is in-memory, so durability is entirely log-shaped: every
   data mutation and every soft-constraint catalog transition is appended
   to the WAL inside a begin/commit/abort frame, and [recover] replays
   the committed frames into a fresh database.  Framing:

   - an explicit {!Txn} maps to one WAL transaction — paper §4.1's
     question ("what then if transaction A aborts in the end anyway?  Is
     the ASC then re-instated?") is answered across crashes too: an ASC
     overturned by a transaction whose commit record never made it to the
     log comes back on recovery, because the whole frame is skipped;
   - outside explicit transactions each statement autocommits: its frame
     commits at statement end (partial effects of a failed DML statement
     are real in memory, so the frame commits on failure as well);
   - DDL is logged as its printed SQL and re-executed at replay; the data
     and catalog side effects of executing it (index backfills,
     exception-table population, SOFT installs) are suppressed from the
     log while the statement runs, since the replayed statement
     regenerates them deterministically.

   Replay applies data records through the listener-free
   {!Database.replay_insert}/[replay_delete]/[replay_update] primitives —
   listener side effects (exception-table maintenance, SC overturns) are
   themselves in the log, so re-firing listeners would double-apply
   them.  Inserts are rid-faithful, which keeps later records (and
   exception-table row identities) aligned.

   Every handler no-ops once {!Obs.Fault.crash_pending} is set: after a
   simulated crash the process is presumed dead, and nothing it would
   have done after the crash instant may reach the log. *)

open Rel

exception Recovery_error of string

type frame = Closed | Open of { txn : int; explicit_ : bool }

type t = {
  sdb : Softdb.t;
  wal : Wal.t;
  mutable frame : frame;
  mutable suppress : bool; (* a DDL statement is executing *)
  mutable dead : bool;
  shards : (string * Table.rid, int) Hashtbl.t;
      (* birth shard of each live partitioned row: every record of a rid
         is tagged with the shard its insert routed to, even if updates
         later moved the row, so one rid's records stay in one stream *)
}

let softdb link = link.sdb
let wal link = link.wal

let alive link = (not link.dead) && not (Obs.Fault.crash_pending ())

(* ---- record emission ----------------------------------------------------- *)

let ensure_frame link =
  match link.frame with
  | Open { txn; _ } -> txn
  | Closed ->
      let txn = Wal.fresh_txn link.wal in
      Wal.append link.wal (Wal.Begin { txn });
      link.frame <- Open { txn; explicit_ = false };
      txn

let commit_frame link =
  match link.frame with
  | Closed -> ()
  | Open { txn; _ } ->
      link.frame <- Closed;
      Wal.commit link.wal txn

let abort_frame link =
  match link.frame with
  | Closed -> ()
  | Open { txn; _ } ->
      link.frame <- Closed;
      Wal.abort link.wal txn

let snapshot_of (sc : Soft_constraint.t) =
  {
    Wal.sc_name = sc.Soft_constraint.name;
    sc_table = sc.Soft_constraint.table;
    sc_absolute = Soft_constraint.is_absolute sc;
    sc_confidence = Soft_constraint.confidence sc;
    sc_state = Soft_constraint.state_to_string sc.Soft_constraint.state;
    sc_anchor = sc.Soft_constraint.installed_at_mutations;
    sc_violations = sc.Soft_constraint.violation_count;
    sc_repr = Sc_codec.statement_repr sc.Soft_constraint.statement;
  }

let shard_key table rid = (String.lowercase_ascii table, rid)

(* Birth-shard lookup with a routing fallback: rows inserted before the
   link attached (or before the table was partitioned) have no map
   entry, so their current routing is the best available tag. *)
let shard_of link ~table ~rid row =
  match Hashtbl.find_opt link.shards (shard_key table rid) with
  | Some s -> s
  | None -> Database.route_rid (Softdb.db link.sdb) table row

let on_mutation link m =
  if alive link && not link.suppress then begin
    let txn = ensure_frame link in
    let record =
      match m with
      | Database.Inserted { table; rid; row } ->
          let shard = Database.route_rid (Softdb.db link.sdb) table row in
          if shard >= 0 then
            Hashtbl.replace link.shards (shard_key table rid) shard;
          Wal.Insert { txn; table; rid; row = Tuple.copy row; shard }
      | Database.Deleted { table; rid; row } ->
          let shard = shard_of link ~table ~rid row in
          Hashtbl.remove link.shards (shard_key table rid);
          Wal.Delete { txn; table; rid; row = Tuple.copy row; shard }
      | Database.Updated { table; rid; before; after } ->
          let shard = shard_of link ~table ~rid before in
          Wal.Update
            {
              txn;
              table;
              rid;
              before = Tuple.copy before;
              after = Tuple.copy after;
              shard;
            }
    in
    Wal.append link.wal record
  end

let on_sc_change link c =
  if alive link && not link.suppress then begin
    let txn = ensure_frame link in
    let name (sc : Soft_constraint.t) = sc.Soft_constraint.name in
    let change =
      match c with
      | Sc_catalog.Installed sc -> Wal.Sc_installed (snapshot_of sc)
      | Sc_catalog.Removed sc -> Wal.Sc_dropped { name = name sc }
      | Sc_catalog.State_changed sc ->
          Wal.Sc_state
            {
              name = name sc;
              state = Soft_constraint.state_to_string sc.Soft_constraint.state;
            }
      | Sc_catalog.Kind_changed sc ->
          Wal.Sc_kind
            {
              name = name sc;
              absolute = Soft_constraint.is_absolute sc;
              confidence = Soft_constraint.confidence sc;
            }
      | Sc_catalog.Anchor_changed sc ->
          Wal.Sc_anchor
            {
              name = name sc;
              anchor = sc.Soft_constraint.installed_at_mutations;
            }
      | Sc_catalog.Violations_changed sc ->
          Wal.Sc_violations
            { name = name sc; count = sc.Soft_constraint.violation_count }
      | Sc_catalog.Statement_changed sc ->
          Wal.Sc_statement
            {
              name = name sc;
              repr = Sc_codec.statement_repr sc.Soft_constraint.statement;
            }
      | Sc_catalog.Exception_registered { constraint_name; table } ->
          Wal.Sc_exception { name = constraint_name; table }
    in
    Wal.append link.wal (Wal.Sc { txn; change })
  end

let on_txn link ev =
  if alive link then
    match ev with
    | Txn.Began t when Txn.softdb t == link.sdb ->
        (* close any dangling autocommit frame, then open the explicit one *)
        commit_frame link;
        let txn = Wal.fresh_txn link.wal in
        Wal.append link.wal (Wal.Begin { txn });
        link.frame <- Open { txn; explicit_ = true }
    | Txn.Committed t when Txn.softdb t == link.sdb -> commit_frame link
    | Txn.Rolled_back t when Txn.softdb t == link.sdb -> abort_frame link
    | Txn.Began _ | Txn.Committed _ | Txn.Rolled_back _ -> ()

let is_ddl (stmt : Sqlfe.Ast.statement) =
  match stmt with
  | Sqlfe.Ast.Create_table _ | Sqlfe.Ast.Drop_table _ | Sqlfe.Ast.Drop_index _
  | Sqlfe.Ast.Create_index _ | Sqlfe.Ast.Alter_add_constraint _
  | Sqlfe.Ast.Alter_partition_by _ | Sqlfe.Ast.Drop_constraint _
  | Sqlfe.Ast.Create_exception_table _ ->
      true
  | Sqlfe.Ast.Query _ | Sqlfe.Ast.Explain _ | Sqlfe.Ast.Explain_analyze _
  | Sqlfe.Ast.Insert _ | Sqlfe.Ast.Delete _ | Sqlfe.Ast.Update _
  | Sqlfe.Ast.Runstats _ ->
      false

let autocommit link =
  match link.frame with
  | Open { explicit_ = false; _ } -> commit_frame link
  | Open { explicit_ = true; _ } | Closed -> ()

let on_statement link ev =
  if alive link then
    match ev with
    | Softdb.Stmt_started stmt -> if is_ddl stmt then link.suppress <- true
    | Softdb.Stmt_finished (stmt, ok) ->
        if is_ddl stmt then begin
          link.suppress <- false;
          if ok then begin
            let txn = ensure_frame link in
            Wal.append link.wal
              (Wal.Ddl { txn; sql = Sqlfe.Printer.statement_to_string stmt });
            autocommit link
          end
        end
        else
          (* a failed DML statement still commits its frame: the partial
             effects are real in memory and must survive recovery *)
          autocommit link

(* ---- wiring -------------------------------------------------------------- *)

let attach sdb wal =
  Obs.Fault.install ();
  List.iter Obs.Fault.declare Txn.fault_points;
  List.iter Obs.Fault.declare Maintenance.fault_points;
  let link =
    {
      sdb;
      wal;
      frame = Closed;
      suppress = false;
      dead = false;
      shards = Hashtbl.create 256;
    }
  in
  (* seed the birth-shard map from current segment membership (rows that
     predate this link: a recovered log, or a freshly declared
     partitioning over existing data) *)
  let db = Softdb.db sdb in
  List.iter
    (fun tname ->
      match Database.partitioning db tname with
      | None -> ()
      | Some part ->
          for i = 0 to Partition.count part - 1 do
            List.iter
              (fun rid -> Hashtbl.replace link.shards (shard_key tname rid) i)
              (Partition.members part i)
          done)
    (Database.partitioned_tables db);
  Database.on_mutation (Softdb.db sdb) (on_mutation link);
  Sc_catalog.on_change (Softdb.catalog sdb) (on_sc_change link);
  Txn.on_event (on_txn link);
  Softdb.on_statement sdb (on_statement link);
  link

let flush link =
  if alive link then begin
    autocommit link;
    Wal.flush link.wal
  end

let detach link =
  flush link;
  link.dead <- true

let kill link = link.dead <- true

(* ---- checkpoint ---------------------------------------------------------- *)

(* Rewrite the log as one committed frame reproducing the current state:
   schema DDL, raw rows (rid-faithful), and soft-constraint images.
   Auto-created key indexes are omitted — replaying the ALTER statements
   recreates them under the same names. *)
let checkpoint link =
  (match link.frame with
  | Open { explicit_ = true; _ } ->
      raise (Recovery_error "checkpoint during an active transaction")
  | Open { explicit_ = false; _ } | Closed -> commit_frame link);
  let db = Softdb.db link.sdb in
  let catalog = Softdb.catalog link.sdb in
  let txn = 1 in
  let buf = ref [] in
  let emit r = buf := r :: !buf in
  let ddl stmt =
    emit (Wal.Ddl { txn; sql = Sqlfe.Printer.statement_to_string stmt })
  in
  emit (Wal.Begin { txn });
  let tables = List.sort String.compare (Database.table_names db) in
  List.iter
    (fun name ->
      let schema = Table.schema (Database.table_exn db name) in
      let cols =
        List.map
          (fun (c : Schema.column) ->
            {
              Sqlfe.Ast.col_name = c.Schema.name;
              col_type = c.Schema.dtype;
              col_not_null = not c.Schema.nullable;
            })
          (Schema.columns schema)
      in
      ddl (Sqlfe.Ast.Create_table { name; cols; constraints = [] }))
    tables;
  List.iter
    (fun (ic : Icdef.t) ->
      ddl
        (Sqlfe.Ast.Alter_add_constraint
           {
             table = ic.Icdef.table;
             con =
               {
                 Sqlfe.Ast.con_name = Some ic.Icdef.name;
                 con_body = ic.Icdef.body;
                 con_mode =
                   (if Icdef.is_enforced ic then Sqlfe.Ast.Mode_enforced
                    else Sqlfe.Ast.Mode_informational);
               };
           }))
    (Database.constraints db);
  (* partitioning before the data inserts, so replay routes rows as it
     applies them *)
  List.iter
    (fun tname ->
      match Database.partitioning db tname with
      | Some part ->
          ddl
            (Sqlfe.Ast.Alter_partition_by
               { table = tname; spec = Partition.spec part })
      | None -> ())
    (Database.partitioned_tables db);
  let auto_key_indexes =
    List.filter_map
      (fun (ic : Icdef.t) ->
        match ic.Icdef.body with
        | Icdef.Primary_key cols | Icdef.Unique cols ->
            Some
              (Printf.sprintf "%s_key_%s" ic.Icdef.table
                 (String.concat "_" cols))
        | _ -> None)
      (Database.constraints db)
  in
  List.iter
    (fun tname ->
      List.iter
        (fun idx ->
          let iname = Index.name idx in
          if not (List.mem iname auto_key_indexes) then
            ddl
              (Sqlfe.Ast.Create_index
                 {
                   index_name = iname;
                   table = tname;
                   columns = Index.columns idx;
                   unique = Index.is_unique idx;
                 }))
        (Database.indexes_on db tname))
    tables;
  (* data records re-tag to current routing: the checkpoint inserts are
     the rows' new births, so the birth-shard map resets with them *)
  Hashtbl.reset link.shards;
  List.iter
    (fun tname ->
      let tbl = Database.table_exn db tname in
      Table.iteri tbl ~f:(fun rid row ->
          let shard = Database.route_rid db tname row in
          if shard >= 0 then
            Hashtbl.replace link.shards (shard_key tname rid) shard;
          emit
            (Wal.Insert { txn; table = tname; rid; row = Tuple.copy row; shard })))
    tables;
  List.iter
    (fun sc -> emit (Wal.Sc { txn; change = Wal.Sc_installed (snapshot_of sc) }))
    (Sc_catalog.all catalog);
  List.iter
    (fun (cname, table) ->
      emit (Wal.Sc { txn; change = Wal.Sc_exception { name = cname; table } }))
    (Sc_catalog.exception_tables catalog);
  emit (Wal.Commit { txn });
  Wal.truncate_with link.wal (List.rev !buf)

(* ---- replay -------------------------------------------------------------- *)

let apply_sc_change sdb change =
  let catalog = Softdb.catalog sdb in
  let with_sc name f =
    match Sc_catalog.find catalog name with Some sc -> f sc | None -> ()
  in
  match change with
  | Wal.Sc_installed snap ->
      (* idempotent: a SOFT declaration replayed as DDL already installed
         the constraint under this name *)
      if Sc_catalog.find catalog snap.Wal.sc_name = None then begin
        let statement = Sc_codec.statement_of_repr snap.Wal.sc_repr in
        let kind =
          if snap.Wal.sc_absolute then Soft_constraint.Absolute
          else Soft_constraint.Statistical snap.Wal.sc_confidence
        in
        let state =
          match Soft_constraint.state_of_string snap.Wal.sc_state with
          | Some s -> s
          | None -> Soft_constraint.Active
        in
        let sc =
          Soft_constraint.make ~name:snap.Wal.sc_name ~table:snap.Wal.sc_table
            ~kind ~state ~installed_at_mutations:snap.Wal.sc_anchor statement
        in
        sc.Soft_constraint.violation_count <- snap.Wal.sc_violations;
        Softdb.install_sc sdb sc
      end
  | Wal.Sc_state { name; state } ->
      with_sc name (fun sc ->
          match Soft_constraint.state_of_string state with
          | Some s -> Sc_catalog.set_state catalog sc s
          | None -> ())
  | Wal.Sc_kind { name; absolute; confidence } ->
      with_sc name (fun sc ->
          Sc_catalog.set_kind catalog sc
            (if absolute then Soft_constraint.Absolute
             else Soft_constraint.Statistical confidence))
  | Wal.Sc_anchor { name; anchor } ->
      with_sc name (fun sc -> Sc_catalog.set_anchor catalog sc anchor)
  | Wal.Sc_violations { name; count } ->
      with_sc name (fun sc -> Sc_catalog.set_violations catalog sc count)
  | Wal.Sc_statement { name; repr } ->
      with_sc name (fun sc ->
          Sc_catalog.set_statement catalog sc (Sc_codec.statement_of_repr repr))
  | Wal.Sc_dropped { name } -> Sc_catalog.drop catalog name
  | Wal.Sc_exception { name; table } ->
      with_sc name (fun sc ->
          ignore (Exception_table.reattach (Softdb.db sdb) ~sc ~table_name:table);
          Sc_catalog.register_exception_table catalog ~constraint_name:name
            ~table)

let apply_record sdb r =
  let db = Softdb.db sdb in
  match r with
  | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ()
  | Wal.Insert { table; rid; row; _ } ->
      Database.replay_insert db ~table rid (Tuple.copy row)
  | Wal.Delete { table; rid; _ } -> Database.replay_delete db ~table rid
  | Wal.Update { table; rid; after; _ } ->
      Database.replay_update db ~table rid (Tuple.copy after)
  | Wal.Ddl { sql; _ } -> (
      (* only successful statements were logged; a replay failure means
         the log and the engine disagree — surface it *)
      try ignore (Softdb.exec sdb sql)
      with e ->
        raise
          (Recovery_error
             (Printf.sprintf "replaying %S failed: %s" sql
                (Printexc.to_string e))))
  | Wal.Sc { change; _ } -> apply_sc_change sdb change

let recover records =
  let sdb = Softdb.create () in
  List.iter
    (fun r ->
      if Wal.committed_txns records (Wal.txn_of r) then apply_record sdb r)
    records;
  sdb

(* Sharded replay: committed data records are buffered into per-shard
   streams (shard [-1] collects unpartitioned tables) and each stream is
   replayed as an independent unit, in ascending shard order.  Schema
   and catalog records are barriers — they flush the pending streams —
   so DDL and SC transitions keep their place relative to the data.

   This is equivalent to the sequential [recover] because (a) all of one
   rid's records carry the same birth-shard tag, so their relative order
   survives, and (b) between barriers, records of *different* rids
   commute: inserts are rid-faithful and deletes/updates address rids
   directly. *)
let recover_sharded records =
  let sdb = Softdb.create () in
  let committed = Wal.committed_txns records in
  let streams : (int, Wal.record list ref) Hashtbl.t = Hashtbl.create 8 in
  let buffer shard r =
    match Hashtbl.find_opt streams shard with
    | Some q -> q := r :: !q
    | None -> Hashtbl.add streams shard (ref [ r ])
  in
  let flush () =
    Hashtbl.fold (fun shard _ acc -> shard :: acc) streams []
    |> List.sort compare
    |> List.iter (fun shard ->
           let q = Hashtbl.find streams shard in
           List.iter (apply_record sdb) (List.rev !q));
    Hashtbl.reset streams
  in
  List.iter
    (fun r ->
      if committed (Wal.txn_of r) then
        match r with
        | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ()
        | Wal.Insert { shard; _ } | Wal.Delete { shard; _ }
        | Wal.Update { shard; _ } ->
            buffer shard r
        | Wal.Ddl _ | Wal.Sc _ ->
            flush ();
            apply_record sdb r)
    records;
  flush ();
  sdb

(* Recover from a log file and reopen it for appending — the CLI's
   [--wal] startup path. *)
let resume path =
  let sdb = recover (Wal.load_file path) in
  let wal = Wal.open_file path in
  let link = attach sdb wal in
  (sdb, link)
