(* Crash-safe durability: the link between a live {!Softdb.t} and a
   write-ahead log, plus checkpointing and replay.

   The engine is in-memory, so durability is entirely log-shaped: every
   data mutation and every soft-constraint catalog transition is appended
   to the WAL inside a begin/commit/abort frame, and [recover] replays
   the committed frames into a fresh database.  Framing:

   - an explicit {!Txn} maps to one WAL transaction — paper §4.1's
     question ("what then if transaction A aborts in the end anyway?  Is
     the ASC then re-instated?") is answered across crashes too: an ASC
     overturned by a transaction whose commit record never made it to the
     log comes back on recovery, because the whole frame is skipped;
   - outside explicit transactions each statement autocommits: its frame
     commits at statement end (partial effects of a failed DML statement
     are real in memory, so the frame commits on failure as well);
   - DDL is logged as its printed SQL and re-executed at replay; the data
     and catalog side effects of executing it (index backfills,
     exception-table population, SOFT installs) are suppressed from the
     log while the statement runs, since the replayed statement
     regenerates them deterministically.

   Replay applies data records through the listener-free
   {!Database.replay_insert}/[replay_delete]/[replay_update] primitives —
   listener side effects (exception-table maintenance, SC overturns) are
   themselves in the log, so re-firing listeners would double-apply
   them.  Inserts are rid-faithful, which keeps later records (and
   exception-table row identities) aligned.

   Every handler no-ops once {!Obs.Fault.crash_pending} is set: after a
   simulated crash the process is presumed dead, and nothing it would
   have done after the crash instant may reach the log. *)

open Rel

exception Recovery_error of string

type frame = Closed | Open of { txn : int; explicit_ : bool }

(* @guarded-by db.rwlock — the WAL hooks fire inside write statements
   under the exclusive lock; startup replay runs before the server *)
type t = {
  sdb : Softdb.t;
  wal : Wal.t;
  mutable frame : frame;
  mutable suppress : bool; (* a DDL statement is executing *)
  mutable dead : bool;
  shards : (string * Table.rid, int) Hashtbl.t;
      (* birth shard of each live partitioned row: every record of a rid
         is tagged with the shard its insert routed to, even if updates
         later moved the row, so one rid's records stay in one stream *)
}

let softdb link = link.sdb
let wal link = link.wal

let alive link = (not link.dead) && not (Obs.Fault.crash_pending ())

(* ---- record emission ----------------------------------------------------- *)

let ensure_frame link =
  match link.frame with
  | Open { txn; _ } -> txn
  | Closed ->
      let txn = Wal.fresh_txn link.wal in
      Wal.append link.wal (Wal.Begin { txn });
      link.frame <- Open { txn; explicit_ = false };
      txn

let commit_frame link =
  match link.frame with
  | Closed -> ()
  | Open { txn; _ } ->
      link.frame <- Closed;
      Wal.commit link.wal txn

let abort_frame link =
  match link.frame with
  | Closed -> ()
  | Open { txn; _ } ->
      link.frame <- Closed;
      Wal.abort link.wal txn

let snapshot_of (sc : Soft_constraint.t) =
  {
    Wal.sc_name = sc.Soft_constraint.name;
    sc_table = sc.Soft_constraint.table;
    sc_absolute = Soft_constraint.is_absolute sc;
    sc_confidence = Soft_constraint.confidence sc;
    sc_state = Soft_constraint.state_to_string sc.Soft_constraint.state;
    sc_anchor = sc.Soft_constraint.installed_at_mutations;
    sc_violations = sc.Soft_constraint.violation_count;
    sc_repr = Sc_codec.statement_repr sc.Soft_constraint.statement;
  }

let shard_key table rid = (String.lowercase_ascii table, rid)

(* Birth-shard lookup with a routing fallback: rows inserted before the
   link attached (or before the table was partitioned) have no map
   entry, so their current routing is the best available tag. *)
let shard_of link ~table ~rid row =
  match Hashtbl.find_opt link.shards (shard_key table rid) with
  | Some s -> s
  | None -> Database.route_rid (Softdb.db link.sdb) table row

let on_mutation link m =
  if alive link && not link.suppress then begin
    let txn = ensure_frame link in
    let record =
      match m with
      | Database.Inserted { table; rid; row } ->
          let shard = Database.route_rid (Softdb.db link.sdb) table row in
          if shard >= 0 then
            Hashtbl.replace link.shards (shard_key table rid) shard;
          Wal.Insert { txn; table; rid; row = Tuple.copy row; shard }
      | Database.Deleted { table; rid; row } ->
          let shard = shard_of link ~table ~rid row in
          Hashtbl.remove link.shards (shard_key table rid);
          Wal.Delete { txn; table; rid; row = Tuple.copy row; shard }
      | Database.Updated { table; rid; before; after } ->
          let shard = shard_of link ~table ~rid before in
          Wal.Update
            {
              txn;
              table;
              rid;
              before = Tuple.copy before;
              after = Tuple.copy after;
              shard;
            }
    in
    Wal.append link.wal record
  end

let on_sc_change link c =
  if alive link && not link.suppress then begin
    let txn = ensure_frame link in
    let name (sc : Soft_constraint.t) = sc.Soft_constraint.name in
    let change =
      match c with
      | Sc_catalog.Installed sc -> Wal.Sc_installed (snapshot_of sc)
      | Sc_catalog.Removed sc -> Wal.Sc_dropped { name = name sc }
      | Sc_catalog.State_changed sc ->
          Wal.Sc_state
            {
              name = name sc;
              state = Soft_constraint.state_to_string sc.Soft_constraint.state;
            }
      | Sc_catalog.Kind_changed sc ->
          Wal.Sc_kind
            {
              name = name sc;
              absolute = Soft_constraint.is_absolute sc;
              confidence = Soft_constraint.confidence sc;
            }
      | Sc_catalog.Anchor_changed sc ->
          Wal.Sc_anchor
            {
              name = name sc;
              anchor = sc.Soft_constraint.installed_at_mutations;
            }
      | Sc_catalog.Violations_changed sc ->
          Wal.Sc_violations
            { name = name sc; count = sc.Soft_constraint.violation_count }
      | Sc_catalog.Statement_changed sc ->
          Wal.Sc_statement
            {
              name = name sc;
              repr = Sc_codec.statement_repr sc.Soft_constraint.statement;
            }
      | Sc_catalog.Exception_registered { constraint_name; table } ->
          Wal.Sc_exception { name = constraint_name; table }
    in
    Wal.append link.wal (Wal.Sc { txn; change })
  end

(* Index lifecycle transitions are logged as [Idx_state] records.  They
   arrive outside statement framing (the backfill runs between
   statements), so each transition autocommits as its own mini-frame
   unless an explicit transaction is open: a promotion to [Readable]
   that reached the log survives a crash on its own.  Suppressed while a
   DDL statement executes — an eager CREATE INDEX transitions the fresh
   index internally, and the replayed statement regenerates that. *)
let on_index_state link idx =
  if alive link && not link.suppress then begin
    let txn = ensure_frame link in
    Wal.append link.wal
      (Wal.Idx_state
         {
           txn;
           name = Index.name idx;
           state = Index.state_to_string (Index.state idx);
         });
    match link.frame with
    | Open { explicit_ = false; _ } ->
        link.frame <- Closed;
        Wal.commit link.wal txn
    | Open { explicit_ = true; _ } | Closed -> ()
  end

let on_txn link ev =
  if alive link then
    match ev with
    | Txn.Began t when Txn.softdb t == link.sdb ->
        (* close any dangling autocommit frame, then open the explicit one *)
        commit_frame link;
        let txn = Wal.fresh_txn link.wal in
        Wal.append link.wal (Wal.Begin { txn });
        link.frame <- Open { txn; explicit_ = true }
    | Txn.Committed t when Txn.softdb t == link.sdb -> commit_frame link
    | Txn.Rolled_back t when Txn.softdb t == link.sdb -> abort_frame link
    | Txn.Began _ | Txn.Committed _ | Txn.Rolled_back _ -> ()

let is_ddl (stmt : Sqlfe.Ast.statement) =
  match stmt with
  | Sqlfe.Ast.Create_table _ | Sqlfe.Ast.Drop_table _ | Sqlfe.Ast.Drop_index _
  | Sqlfe.Ast.Create_index _ | Sqlfe.Ast.Alter_add_constraint _
  | Sqlfe.Ast.Alter_partition_by _ | Sqlfe.Ast.Drop_constraint _
  | Sqlfe.Ast.Create_exception_table _ ->
      true
  | Sqlfe.Ast.Query _ | Sqlfe.Ast.Explain _ | Sqlfe.Ast.Explain_analyze _
  | Sqlfe.Ast.Insert _ | Sqlfe.Ast.Delete _ | Sqlfe.Ast.Update _
  | Sqlfe.Ast.Runstats _ ->
      false

let autocommit link =
  match link.frame with
  | Open { explicit_ = false; _ } -> commit_frame link
  | Open { explicit_ = true; _ } | Closed -> ()

let on_statement link ev =
  if alive link then
    match ev with
    | Softdb.Stmt_started stmt -> if is_ddl stmt then link.suppress <- true
    | Softdb.Stmt_finished (stmt, ok) ->
        if is_ddl stmt then begin
          link.suppress <- false;
          if ok then begin
            let txn = ensure_frame link in
            Wal.append link.wal
              (Wal.Ddl { txn; sql = Sqlfe.Printer.statement_to_string stmt });
            autocommit link
          end
        end
        else
          (* a failed DML statement still commits its frame: the partial
             effects are real in memory and must survive recovery *)
          autocommit link

(* ---- wiring -------------------------------------------------------------- *)

let attach sdb wal =
  Obs.Fault.install ();
  List.iter Obs.Fault.declare Txn.fault_points;
  List.iter Obs.Fault.declare Maintenance.fault_points;
  let link =
    {
      sdb;
      wal;
      frame = Closed;
      suppress = false;
      dead = false;
      shards = Hashtbl.create 256;
    }
  in
  (* seed the birth-shard map from current segment membership (rows that
     predate this link: a recovered log, or a freshly declared
     partitioning over existing data) *)
  let db = Softdb.db sdb in
  List.iter
    (fun tname ->
      match Database.partitioning db tname with
      | None -> ()
      | Some part ->
          for i = 0 to Partition.count part - 1 do
            List.iter
              (fun rid -> Hashtbl.replace link.shards (shard_key tname rid) i)
              (Partition.members part i)
          done)
    (Database.partitioned_tables db);
  Database.on_mutation (Softdb.db sdb) (on_mutation link);
  Database.on_index_state (Softdb.db sdb) (on_index_state link);
  Sc_catalog.on_change (Softdb.catalog sdb) (on_sc_change link);
  Txn.on_event (on_txn link);
  Softdb.on_statement sdb (on_statement link);
  link

let flush link =
  if alive link then begin
    autocommit link;
    Wal.flush link.wal
  end

let detach link =
  flush link;
  link.dead <- true

let kill link = link.dead <- true

(* ---- checkpoint ---------------------------------------------------------- *)

(* Rewrite the log as one committed frame reproducing the current state:
   schema DDL, raw rows (rid-faithful), and soft-constraint images.
   Auto-created key indexes are omitted — replaying the ALTER statements
   recreates them under the same names. *)
let checkpoint link =
  (match link.frame with
  | Open { explicit_ = true; _ } ->
      raise (Recovery_error "checkpoint during an active transaction")
  | Open { explicit_ = false; _ } | Closed -> commit_frame link);
  let db = Softdb.db link.sdb in
  let catalog = Softdb.catalog link.sdb in
  let txn = 1 in
  let buf = ref [] in
  let emit r = buf := r :: !buf in
  let ddl stmt =
    emit (Wal.Ddl { txn; sql = Sqlfe.Printer.statement_to_string stmt })
  in
  emit (Wal.Begin { txn });
  let tables = List.sort String.compare (Database.table_names db) in
  List.iter
    (fun name ->
      let schema = Table.schema (Database.table_exn db name) in
      let cols =
        List.map
          (fun (c : Schema.column) ->
            {
              Sqlfe.Ast.col_name = c.Schema.name;
              col_type = c.Schema.dtype;
              col_not_null = not c.Schema.nullable;
            })
          (Schema.columns schema)
      in
      ddl (Sqlfe.Ast.Create_table { name; cols; constraints = [] }))
    tables;
  List.iter
    (fun (ic : Icdef.t) ->
      ddl
        (Sqlfe.Ast.Alter_add_constraint
           {
             table = ic.Icdef.table;
             con =
               {
                 Sqlfe.Ast.con_name = Some ic.Icdef.name;
                 con_body = ic.Icdef.body;
                 con_mode =
                   (if Icdef.is_enforced ic then Sqlfe.Ast.Mode_enforced
                    else Sqlfe.Ast.Mode_informational);
               };
           }))
    (Database.constraints db);
  (* partitioning before the data inserts, so replay routes rows as it
     applies them *)
  List.iter
    (fun tname ->
      match Database.partitioning db tname with
      | Some part ->
          ddl
            (Sqlfe.Ast.Alter_partition_by
               { table = tname; spec = Partition.spec part })
      | None -> ())
    (Database.partitioned_tables db);
  let auto_key_indexes =
    List.filter_map
      (fun (ic : Icdef.t) ->
        match ic.Icdef.body with
        | Icdef.Primary_key cols | Icdef.Unique cols ->
            Some
              (Printf.sprintf "%s_key_%s" ic.Icdef.table
                 (String.concat "_" cols))
        | _ -> None)
      (Database.constraints db)
  in
  List.iter
    (fun tname ->
      List.iter
        (fun idx ->
          let iname = Index.name idx in
          if not (List.mem iname auto_key_indexes) then begin
            (* a readable index replays as an eager create (rebuilt from
               the checkpointed rows, consistent by construction); any
               other lifecycle state replays as an ONLINE shell plus an
               Idx_state record pinning the state *)
            let state = Index.state idx in
            ddl
              (Sqlfe.Ast.Create_index
                 {
                   index_name = iname;
                   table = tname;
                   columns = Index.columns idx;
                   unique = Index.is_unique idx;
                   online = state <> Index.Readable;
                 });
            match state with
            | Index.Readable | Index.Write_only -> ()
            | Index.Backfilling | Index.Demoted ->
                emit
                  (Wal.Idx_state
                     { txn; name = iname; state = Index.state_to_string state })
          end)
        (Database.indexes_on db tname))
    tables;
  (* data records re-tag to current routing: the checkpoint inserts are
     the rows' new births, so the birth-shard map resets with them *)
  Hashtbl.reset link.shards;
  List.iter
    (fun tname ->
      let tbl = Database.table_exn db tname in
      Table.iteri tbl ~f:(fun rid row ->
          let shard = Database.route_rid db tname row in
          if shard >= 0 then
            Hashtbl.replace link.shards (shard_key tname rid) shard;
          emit
            (Wal.Insert { txn; table = tname; rid; row = Tuple.copy row; shard })))
    tables;
  List.iter
    (fun sc -> emit (Wal.Sc { txn; change = Wal.Sc_installed (snapshot_of sc) }))
    (Sc_catalog.all catalog);
  List.iter
    (fun (cname, table) ->
      emit (Wal.Sc { txn; change = Wal.Sc_exception { name = cname; table } }))
    (Sc_catalog.exception_tables catalog);
  emit (Wal.Commit { txn });
  Wal.truncate_with link.wal (List.rev !buf)

(* ---- replay -------------------------------------------------------------- *)

let apply_sc_change sdb change =
  let catalog = Softdb.catalog sdb in
  let with_sc name f =
    match Sc_catalog.find catalog name with Some sc -> f sc | None -> ()
  in
  match change with
  | Wal.Sc_installed snap ->
      (* idempotent: a SOFT declaration replayed as DDL already installed
         the constraint under this name *)
      if Sc_catalog.find catalog snap.Wal.sc_name = None then begin
        let statement = Sc_codec.statement_of_repr snap.Wal.sc_repr in
        let kind =
          if snap.Wal.sc_absolute then Soft_constraint.Absolute
          else Soft_constraint.Statistical snap.Wal.sc_confidence
        in
        let state =
          match Soft_constraint.state_of_string snap.Wal.sc_state with
          | Some s -> s
          | None -> Soft_constraint.Active
        in
        let sc =
          Soft_constraint.make ~name:snap.Wal.sc_name ~table:snap.Wal.sc_table
            ~kind ~state ~installed_at_mutations:snap.Wal.sc_anchor statement
        in
        sc.Soft_constraint.violation_count <- snap.Wal.sc_violations;
        Softdb.install_sc sdb sc
      end
  | Wal.Sc_state { name; state } ->
      with_sc name (fun sc ->
          match Soft_constraint.state_of_string state with
          | Some s -> Sc_catalog.set_state catalog sc s
          | None -> ())
  | Wal.Sc_kind { name; absolute; confidence } ->
      with_sc name (fun sc ->
          Sc_catalog.set_kind catalog sc
            (if absolute then Soft_constraint.Absolute
             else Soft_constraint.Statistical confidence))
  | Wal.Sc_anchor { name; anchor } ->
      with_sc name (fun sc -> Sc_catalog.set_anchor catalog sc anchor)
  | Wal.Sc_violations { name; count } ->
      with_sc name (fun sc -> Sc_catalog.set_violations catalog sc count)
  | Wal.Sc_statement { name; repr } ->
      with_sc name (fun sc ->
          Sc_catalog.set_statement catalog sc (Sc_codec.statement_of_repr repr))
  | Wal.Sc_dropped { name } -> Sc_catalog.drop catalog name
  | Wal.Sc_exception { name; table } ->
      with_sc name (fun sc ->
          ignore (Exception_table.reattach (Softdb.db sdb) ~sc ~table_name:table);
          Sc_catalog.register_exception_table catalog ~constraint_name:name
            ~table)

let apply_record sdb r =
  let db = Softdb.db sdb in
  match r with
  | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ()
  | Wal.Insert { table; rid; row; _ } ->
      Database.replay_insert db ~table rid (Tuple.copy row)
  | Wal.Delete { table; rid; _ } -> Database.replay_delete db ~table rid
  | Wal.Update { table; rid; after; _ } ->
      Database.replay_update db ~table rid (Tuple.copy after)
  | Wal.Ddl { sql; _ } -> (
      (* only successful statements were logged; a replay failure means
         the log and the engine disagree — surface it.  Statement-level
         execution, not [Softdb.exec]: an ONLINE create must replay as
         just the write-only shell, because the build that followed it
         is in the log as Idx_state transitions, never a second
         backfill. *)
      try
        ignore (Softdb.exec_statement sdb (Sqlfe.Parser.parse_statement sql))
      with e ->
        raise
          (Recovery_error
             (Printf.sprintf "replaying %S failed: %s" sql
                (Printexc.to_string e))))
  | Wal.Idx_state { name; state; _ } -> (
      match (Database.find_index_by_name db name, Index.state_of_string state)
      with
      | Some _, Some Index.Readable ->
          (* promote by rebuilding: the log carries no tree image, and a
             rebuild from the recovered heap is consistent by
             construction *)
          ignore (Database.rebuild_index db name : Index.t)
      | Some idx, Some s -> Database.set_index_state db idx s
      | None, _ | _, None -> ())
  | Wal.Sc { change; _ } -> apply_sc_change sdb change

(* An index still [Backfilling] when the log ends was mid-build at the
   crash: its promotion never committed, so the tree's completeness
   cannot be promised.  Demote it — the post-crash invariant is that
   every index is either consistent ([Readable], rebuilt) or demoted,
   never silently half-built. *)
let demote_unfinished_builds sdb =
  let db = Softdb.db sdb in
  List.iter
    (fun idx ->
      match Index.state idx with
      | Index.Backfilling -> Database.set_index_state db idx Index.Demoted
      | Index.Write_only | Index.Readable | Index.Demoted -> ())
    (Database.all_indexes db)

let recover records =
  let sdb = Softdb.create () in
  List.iter
    (fun r ->
      if Wal.committed_txns records (Wal.txn_of r) then apply_record sdb r)
    records;
  demote_unfinished_builds sdb;
  sdb

(* Sharded replay: committed data records are buffered into per-shard
   streams (shard [-1] collects unpartitioned tables) and each stream is
   replayed as an independent unit, in ascending shard order.  Schema
   and catalog records are barriers — they flush the pending streams —
   so DDL and SC transitions keep their place relative to the data.

   This is equivalent to the sequential [recover] because (a) all of one
   rid's records carry the same birth-shard tag, so their relative order
   survives, and (b) between barriers, records of *different* rids
   commute: inserts are rid-faithful and deletes/updates address rids
   directly. *)
let recover_sharded records =
  let sdb = Softdb.create () in
  let committed = Wal.committed_txns records in
  let streams : (int, Wal.record list ref) Hashtbl.t = Hashtbl.create 8 in
  let buffer shard r =
    match Hashtbl.find_opt streams shard with
    | Some q -> q := r :: !q
    | None -> Hashtbl.add streams shard (ref [ r ])
  in
  let flush () =
    Hashtbl.fold (fun shard _ acc -> shard :: acc) streams []
    |> List.sort compare
    |> List.iter (fun shard ->
           let q = Hashtbl.find streams shard in
           List.iter (apply_record sdb) (List.rev !q));
    Hashtbl.reset streams
  in
  List.iter
    (fun r ->
      if committed (Wal.txn_of r) then
        match r with
        | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> ()
        | Wal.Insert { shard; _ } | Wal.Delete { shard; _ }
        | Wal.Update { shard; _ } ->
            buffer shard r
        | Wal.Ddl _ | Wal.Sc _ | Wal.Idx_state _ ->
            (* barriers: index state depends on the rows applied so far
               (a Readable promotion rebuilds from the heap), so pending
               data streams must land first *)
            flush ();
            apply_record sdb r)
    records;
  flush ();
  demote_unfinished_builds sdb;
  sdb

(* ---- salvage-aware recovery ---------------------------------------------- *)

(* The strict replayers above trust their input; this section is the
   path that faces real, possibly-damaged log files.  Classification
   rule (the torn-tail rule):

   - every unparsable / checksum-failing / LSN-regressing line is
     *corrupt*;
   - if no committed frame appears at or after the first corrupt line,
     the damage is a {e torn tail}: everything from that line on is
     provably uncommitted, so the tail is quarantined to
     [<wal>.salvage], the file truncated at the tear, and recovery
     proceeds — in both modes, as every production WAL does;
   - otherwise the damage is {e interior}: a committed frame follows
     the corruption, so data loss is possible.  [Strict] refuses;
     [Salvage] drops exactly the transactions that were open across a
     corrupt line (their replay would be partial), reports them, and
     applies the rest. *)

type mode = Strict | Salvage

let mode_name = function Strict -> "strict" | Salvage -> "salvage"

type corrupt_line = { lineno : int; reason : string }

type report = {
  mode : mode;
  scanned_lines : int;
  applied_records : int;  (* non-frame records actually replayed *)
  committed_txns : int;  (* distinct committed transactions replayed *)
  dropped_txns : int list;  (* affected by interior corruption, dropped *)
  torn_tail : bool;
  quarantined_bytes : int;
  salvage_path : string option;
  corrupt : corrupt_line list;
}

type analysis = {
  keep : Wal.record list;  (* what the replayer gets *)
  bad : Wal.scanned list;  (* corrupt physical lines, in order *)
  truncate_at : int option;  (* torn tail: byte offset of the tear *)
  partial : report;  (* quarantine fields zeroed; file layer fills them *)
}

let is_commit = function Wal.Commit _ -> true | _ -> false

let analyze ~mode scanned =
  (* one pass: classify each line, checking LSN monotonicity across the
     valid ones (a regression means a stale or spliced line) *)
  let last_lsn = ref 0 in
  let classified =
    List.map
      (fun (s : Wal.scanned) ->
        match s.Wal.parsed with
        | Error reason -> (s, Error reason)
        | Ok r -> (
            match s.Wal.lsn with
            | Some lsn when lsn <= !last_lsn ->
                ( s,
                  Error
                    (Printf.sprintf "LSN regression (%d after %d)" lsn
                       !last_lsn) )
            | Some lsn ->
                last_lsn := lsn;
                (s, Ok r)
            | None -> (s, Ok r)))
      scanned
  in
  let bad =
    List.filter_map
      (fun (s, c) -> match c with Error _ -> Some s | Ok _ -> None)
      classified
  in
  let corrupt =
    List.filter_map
      (fun ((s : Wal.scanned), c) ->
        match c with
        | Error reason -> Some { lineno = s.Wal.lineno; reason }
        | Ok _ -> None)
      classified
  in
  let keep, truncate_at, dropped =
    match bad with
    | [] ->
        ( List.filter_map
            (fun (_, c) -> match c with Ok r -> Some r | Error _ -> None)
            classified,
          None,
          [] )
    | first :: _ ->
        let commit_after =
          List.exists
            (fun ((s : Wal.scanned), c) ->
              s.Wal.lineno > first.Wal.lineno
              && match c with Ok r -> is_commit r | Error _ -> false)
            classified
        in
        if not commit_after then
          (* torn tail: the clean prefix is the whole truth *)
          ( List.filter_map
              (fun ((s : Wal.scanned), c) ->
                match c with
                | Ok r when s.Wal.lineno < first.Wal.lineno -> Some r
                | Ok _ | Error _ -> None)
              classified,
            Some first.Wal.offset,
            [] )
        else begin
          (match mode with
          | Strict ->
              let { lineno; reason } = List.hd corrupt in
              raise
                (Recovery_error
                   (Printf.sprintf
                      "interior corruption at log line %d (%s); a later \
                       frame committed — rerun in salvage mode to drop \
                       the affected transactions"
                      lineno reason))
          | Salvage -> ());
          (* affected = transactions open across any corrupt line: the
             corrupt line may be one of their records (or their commit),
             so replaying them would be partial *)
          let affected = Hashtbl.create 8 in
          let open_txns = Hashtbl.create 8 in
          List.iter
            (fun (_, c) ->
              match c with
              | Ok (Wal.Begin { txn }) -> Hashtbl.replace open_txns txn ()
              | Ok (Wal.Commit { txn } | Wal.Abort { txn }) ->
                  Hashtbl.remove open_txns txn
              | Ok _ -> ()
              | Error _ ->
                  Hashtbl.iter
                    (fun txn () -> Hashtbl.replace affected txn ())
                    open_txns)
            classified;
          ( List.filter_map
              (fun (_, c) ->
                match c with
                | Ok r when not (Hashtbl.mem affected (Wal.txn_of r)) ->
                    Some r
                | Ok _ | Error _ -> None)
              classified,
            None,
            Hashtbl.fold (fun txn () acc -> txn :: acc) affected []
            |> List.sort compare )
        end
  in
  let committed = Wal.committed_txns keep in
  let applied_records =
    List.length
      (List.filter
         (fun r ->
           committed (Wal.txn_of r)
           &&
           match r with
           | Wal.Begin _ | Wal.Commit _ | Wal.Abort _ -> false
           | _ -> true)
         keep)
  in
  let committed_txns =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> match r with Wal.Commit { txn } -> Some txn | _ -> None)
         keep)
    |> List.length
  in
  {
    keep;
    bad;
    truncate_at;
    partial =
      {
        mode;
        scanned_lines = List.length scanned;
        applied_records;
        committed_txns;
        dropped_txns = dropped;
        torn_tail = truncate_at <> None;
        quarantined_bytes = 0;
        salvage_path = None;
        corrupt;
      };
  }

let register_report sdb (r : report) =
  Database.register_virtual (Softdb.db sdb) ~name:"sys.recovery"
    ~schema:Obs.Sys_tables.recovery_schema (fun () ->
      [
        Obs.Sys_tables.recovery_row ~mode:(mode_name r.mode)
          ~torn_tail:r.torn_tail ~scanned_lines:r.scanned_lines
          ~applied_records:r.applied_records ~committed_txns:r.committed_txns
          ~dropped_txns:r.dropped_txns
          ~corrupt_lines:(List.length r.corrupt)
          ~quarantined_bytes:r.quarantined_bytes
          ~salvage_path:r.salvage_path;
      ])

let recover_scan ?(mode = Strict) scanned =
  let a = analyze ~mode scanned in
  let sdb = recover a.keep in
  register_report sdb a.partial;
  (sdb, a.partial)

let recover_sharded_scan ?(mode = Strict) scanned =
  let a = analyze ~mode scanned in
  let sdb = recover_sharded a.keep in
  register_report sdb a.partial;
  (sdb, a.partial)

(* Quarantine and repair the physical file.  [core] does not link unix,
   so truncation is a rewrite: clean prefix to a sibling file, renamed
   over the log (crash-safe, like the checkpoint). *)
let quarantine path chunks =
  let salvage = path ^ ".salvage" in
  let total = List.fold_left (fun n c -> n + String.length c) 0 chunks in
  Out_channel.with_open_gen
    [ Open_append; Open_creat; Open_binary ]
    0o644 salvage
    (fun oc ->
      Printf.fprintf oc "# quarantined %d bytes from %s\n" total path;
      List.iter (Out_channel.output_string oc) chunks;
      match List.rev chunks with
      | last :: _
        when String.length last > 0 && last.[String.length last - 1] <> '\n'
        ->
          Out_channel.output_char oc '\n'
      | _ -> ());
  (salvage, total)

let rewrite_file path contents =
  let tmp = path ^ ".salvtmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc contents);
  Sys.rename tmp path

let recover_file ?(mode = Strict) path =
  let raw, scanned = Wal.scan_file path in
  let a = analyze ~mode scanned in
  let report =
    match a.truncate_at with
    | Some off when off < String.length raw ->
        (* torn tail: quarantine everything from the tear, truncate *)
        let tail = String.sub raw off (String.length raw - off) in
        let salvage, total = quarantine path [ tail ] in
        rewrite_file path (String.sub raw 0 off);
        {
          a.partial with
          quarantined_bytes = total;
          salvage_path = Some salvage;
        }
    | Some _ | None ->
        if a.bad = [] then a.partial
        else begin
          (* interior corruption, salvage mode: quarantine the corrupt
             lines and rewrite the log from the surviving records, so
             the repaired file replays to exactly the recovered state *)
          let chunks =
            List.map
              (fun (s : Wal.scanned) -> String.sub raw s.Wal.offset s.Wal.bytes)
              a.bad
          in
          let salvage, total = quarantine path chunks in
          let buf = Buffer.create (String.length raw) in
          List.iteri
            (fun i r ->
              Buffer.add_string buf (Wal.line_of_record ~lsn:(i + 1) r);
              Buffer.add_char buf '\n')
            a.keep;
          rewrite_file path (Buffer.contents buf);
          {
            a.partial with
            quarantined_bytes = total;
            salvage_path = Some salvage;
          }
        end
  in
  let sdb = recover a.keep in
  register_report sdb report;
  (sdb, report)

(* Recover from a log file and reopen it for appending — the CLI's
   [--wal] startup path.  The file has been salvaged by the time
   {!Wal.open_file} re-reads it, so the strict load cannot trip. *)
let resume ?(mode = Strict) path =
  let sdb, report = recover_file ~mode path in
  let wal = Wal.open_file path in
  let link = attach sdb wal in
  (sdb, link, report)
