(* Prepared plans and ASC invalidation (paper §4.1).

   "A worse expense for ASC violations is that every pre-compiled query
   plan that employs a violated ASC in its plan must be dropped …  One
   possible tactic is for a package to incorporate a 'backup' plan which
   is ASC-free.  If an ASC is overturned, a flag is raised and packages
   revert to the alternative plans."

   A prepared entry keeps the optimized plan together with the names of
   the soft constraints its rewrites relied on (from the rewrite log) and
   a backup plan compiled with the whole soft-constraint machinery off.
   Execution checks the dependencies against the live catalog: if every
   *rewrite-critical* dependency is still Active the fast plan runs;
   otherwise the entry flips to the backup.  Dependencies that are
   estimation-only (twins) never invalidate — a plan chosen under stale
   statistics is merely sub-optimal, exactly the paper's reading.
   [reprepare] re-optimizes invalidated entries against the current
   catalog, the "recompiled before they can be used again" path.

   The cache is bounded: past [capacity] entries the least-recently-used
   one is evicted (prepare-or-execute counts as use), the eviction tallied
   in [stats] and in the plan_cache.evictions metric.  Entry-list and
   recency bookkeeping are mutex-guarded because one cache is shared by
   every server session (lib/srv); optimization itself runs outside the
   lock so a slow prepare never blocks another session's execute. *)

(* @guarded-by core.plan_cache *)
type entry = {
  name : string;
  sql : string;
  query : Sqlfe.Ast.query;
  mutable report : Opt.Explain.report;
  mutable deps : string list; (* SCs whose validity the plan relies on *)
  mutable backup : Exec.Plan.t; (* soft-constraint-free alternative *)
  mutable obj_tables : string list; (* tables any compiled plan opens *)
  mutable obj_indexes : string list; (* indexes any compiled plan probes *)
  mutable invalidated : bool;
  mutable fast_runs : int;
  mutable backup_runs : int;
  mutable last_used : int; (* recency stamp for LRU eviction *)
}

(* @guarded-by core.plan_cache *)
type t = {
  sdb : Softdb.t;
  capacity : int;
  lock : Mutex.t;
  mutable use_seq : int;
  mutable evictions : int;
  mutable entries : entry list;
}

exception No_such_plan of string

let default_capacity = 64

let locked t f =
  (* @acquires core.plan_cache while srv.session db.rwlock *)
  Obs.Lockdep.acquire "core.plan_cache";
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.unlock t.lock;
      Obs.Lockdep.release "core.plan_cache")
    f

(* Rewrite-critical dependencies: every SC a non-estimation-only rewrite
   relied on.  Twins (estimation-only) are excluded.  The report's guard
   set is exactly this (with class-level attribution for rules that log
   no constraint name), computed by {!Softdb.optimize}. *)
let dependencies_of (report : Opt.Explain.report) = report.Opt.Explain.guards

let touch t entry =
  t.use_seq <- t.use_seq + 1;
  entry.last_used <- t.use_seq

(* Evict least-recently-used entries until the count fits the capacity;
   caller holds the lock. *)
let enforce_capacity t =
  while List.length t.entries > t.capacity do
    let victim =
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e
          | Some v -> if e.last_used < v.last_used then Some e else acc)
        None t.entries
    in
    match victim with
    | None -> ()
    | Some v ->
        t.entries <- List.filter (fun e -> e != v) t.entries;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.incr (Softdb.metrics t.sdb) "plan_cache.evictions"
  done

(* Compilation happens outside the cache lock — optimize is expensive
   and takes engine-side locks of its own. *)
let compile t sql =
  let query = Sqlfe.Parser.parse_query_string sql in
  let report = Softdb.optimize t.sdb query in
  let backup =
    (Softdb.optimize ~flags:Opt.Rewrite.all_off t.sdb query).Opt.Explain.plan
  in
  (query, report, backup)

(* Catalog objects any of the entry's compiled plans dereference at
   open: fast plan, SC-free backup, and the report's own guarded backup.
   DDL against one of them — DROP TABLE, DROP INDEX, an index demotion —
   makes the compiled plans unrunnable (not merely sub-optimal, as SC
   invalidation does), so execution must re-prepare from SQL first. *)
let plan_objects (report : Opt.Explain.report) backup =
  let plans =
    report.Opt.Explain.plan :: backup
    :: Option.to_list report.Opt.Explain.backup_plan
  in
  ( List.sort_uniq String.compare
      (List.concat_map Exec.Plan.referenced_tables plans),
    List.sort_uniq String.compare
      (List.concat_map Exec.Plan.referenced_indexes plans) )

let fresh_entry ~name ~sql ~query ~report ~backup =
  let obj_tables, obj_indexes = plan_objects report backup in
  {
    name;
    sql;
    query;
    report;
    deps = dependencies_of report;
    backup;
    obj_tables;
    obj_indexes;
    invalidated = false;
    fast_runs = 0;
    backup_runs = 0;
    last_used = 0;
  }

let prepare t ~name sql =
  let query, report, backup = compile t sql in
  locked t (fun () ->
      let entry = fresh_entry ~name ~sql ~query ~report ~backup in
      touch t entry;
      t.entries <- entry :: List.filter (fun e -> e.name <> name) t.entries;
      enforce_capacity t;
      entry)

let find t name =
  locked t (fun () -> List.find_opt (fun e -> e.name = name) t.entries)

let find_or_prepare t ~name sql =
  match find t name with
  | Some e -> (e, false)
  | None ->
      let query, report, backup = compile t sql in
      (* re-check under the lock: sessions prepare concurrently under a
         shared read lock, so two of them can both miss above and both
         compile — without this, the second insert would replace the
         first and the sharing metric would undercount.  The loser's
         compilation is discarded; the winner's entry is what everyone
         binds to. *)
      locked t (fun () ->
          match List.find_opt (fun e -> e.name = name) t.entries with
          | Some e -> (e, false)
          | None ->
              let entry = fresh_entry ~name ~sql ~query ~report ~backup in
              touch t entry;
              t.entries <- entry :: t.entries;
              enforce_capacity t;
              (entry, true))

let find_exn t name =
  match find t name with Some e -> e | None -> raise (No_such_plan name)

(* A dependency invalidates the plan when it exists but is no longer a
   valid basis for the compiled rewrites.  A dependency that was *dropped
   from the catalog entirely* also invalidates: the promise is gone.
   Hard ICs (never in the SC catalog but named as deps via FK rules) and
   exception-backed ASCs stay valid while still declared — the same
   check the guarded executor applies ({!Softdb.guard_ok}). *)
let dep_valid t dep = Softdb.guard_ok t.sdb dep

let is_valid t entry =
  (not entry.invalidated) && List.for_all (dep_valid t) entry.deps

(* Creating the cache also binds the sys.plan_cache virtual table to it,
   so the cache's state is SQL-queryable through the facade. *)
let create ?(capacity = default_capacity) sdb =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  let t =
    {
      sdb;
      capacity;
      lock = Mutex.create ();
      use_seq = 0;
      evictions = 0;
      entries = [];
    }
  in
  Softdb.set_plan_cache_source sdb (fun () ->
      let entries = locked t (fun () -> t.entries) in
      List.rev_map
        (fun e ->
          Obs.Sys_tables.plan_cache_row ~name:e.name ~sql:e.sql
            ~valid:(is_valid t e) ~dependencies:e.deps ~fast_runs:e.fast_runs
            ~backup_runs:e.backup_runs ~last_used:e.last_used)
        entries);
  t

type cache_stats = {
  entries : int;
  valid : int;
  fast_runs : int;
  backup_runs : int;
  capacity : int;
  evictions : int;
}

let stats t =
  let entries, evictions = locked t (fun () -> (t.entries, t.evictions)) in
  List.fold_left
    (fun acc e ->
      {
        acc with
        entries = acc.entries + 1;
        valid = (acc.valid + if is_valid t e then 1 else 0);
        fast_runs = acc.fast_runs + e.fast_runs;
        backup_runs = acc.backup_runs + e.backup_runs;
      })
    {
      entries = 0;
      valid = 0;
      fast_runs = 0;
      backup_runs = 0;
      capacity = t.capacity;
      evictions;
    }
    entries

(* Execute a prepared plan: the fast plan while its dependencies hold, the
   ASC-free backup once overturned (the §4.1 flag-and-revert tactic).
   Validity is checked and counters stamped under the lock; the plan
   itself runs outside it. *)
(* DDL staleness: a referenced table/index no longer exists, or a
   referenced index is no longer readable.  Distinct from SC-dependency
   invalidation — a stale plan cannot run at all. *)
let ddl_stale t entry =
  let db = Softdb.db t.sdb in
  List.exists
    (fun tbl -> Rel.Database.find_table db tbl = None)
    entry.obj_tables
  || List.exists
       (fun name ->
         match Rel.Database.find_index_by_name db name with
         | Some idx -> not (Rel.Index.is_readable idx)
         | None -> true)
       entry.obj_indexes

(* Recompile an entry from its SQL (outside the lock — compile takes
   engine-side locks of its own) and swap its compiled state in place. *)
let recompile_entry t entry =
  let _, report, backup = compile t entry.sql in
  locked t (fun () ->
      entry.report <- report;
      entry.backup <- backup;
      entry.deps <- dependencies_of report;
      let obj_tables, obj_indexes = plan_objects report backup in
      entry.obj_tables <- obj_tables;
      entry.obj_indexes <- obj_indexes;
      entry.invalidated <- false)

let execute t name =
  let entry = find_exn t name in
  (if ddl_stale t entry then begin
     (* re-prepare from the SQL (a dropped table still fails here, as it
        must — no plan can answer it) rather than run a stale plan *)
     recompile_entry t entry;
     Obs.Metrics.incr (Softdb.metrics t.sdb) "plan_cache.ddl_repreparations"
   end);
  let plan =
    locked t (fun () ->
        touch t entry;
        if is_valid t entry then begin
          entry.fast_runs <- entry.fast_runs + 1;
          entry.report.Opt.Explain.plan
        end
        else begin
          (* count the fallback once, on the valid→invalidated transition:
             re-running an already-overturned entry is not a new fallback
             event, and per-run increments would multiply-count one
             guarded statement (cf. Softdb.execute_report: one increment
             per statement, however many guards failed) *)
          if not entry.invalidated then begin
            entry.invalidated <- true;
            Softdb.note_guard_fallback t.sdb
              (List.filter (fun d -> not (dep_valid t d)) entry.deps)
          end;
          entry.backup_runs <- entry.backup_runs + 1;
          entry.backup
        end)
  in
  Exec.Executor.run (Softdb.db t.sdb) plan

(* Re-optimize every invalidated or DDL-stale entry against the current
   catalog.  An entry whose recompilation fails (e.g. its table was
   dropped) is left as is: execution surfaces the real error when the
   plan is next asked for. *)
let reprepare t =
  let entries = locked t (fun () -> t.entries) in
  List.iter
    (fun entry ->
      if
        entry.invalidated || ddl_stale t entry
        || not (List.for_all (dep_valid t) entry.deps)
      then try recompile_entry t entry with _ -> ())
    entries

let pp_entry ppf e =
  Fmt.pf ppf "%s: deps=[%a] fast=%d backup=%d%s" e.name
    Fmt.(list ~sep:(any ", ") string)
    e.deps e.fast_runs e.backup_runs
    (if e.invalidated then " INVALIDATED" else "")
