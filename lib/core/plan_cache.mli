(** Prepared plans and ASC invalidation (paper §4.1).

    "Every pre-compiled query plan that employs a violated ASC in its plan
    must be dropped … One possible tactic is for a package to incorporate
    a 'backup' plan which is ASC-free.  If an ASC is overturned, a flag is
    raised and packages revert to the alternative plans."

    A prepared entry keeps the optimized plan, the names of the soft
    constraints its rewrites relied on, and a backup plan compiled with
    the soft-constraint machinery off.  Execution runs the fast plan while
    every rewrite-critical dependency is still Active, and the backup
    afterwards; twins (estimation-only) never invalidate — a plan chosen
    under stale statistics is merely sub-optimal.

    The cache is bounded and LRU-evicting (prepare and execute both count
    as use; evictions surface in {!stats}, the sys.plan_cache [last_used]
    column, and the [plan_cache.evictions] metric), and thread-safe, so
    one cache can be shared by every session of the server
    ({!Srv.Server}). *)

type entry = {
  name : string;
  sql : string;
  query : Sqlfe.Ast.query;
  mutable report : Opt.Explain.report;
  mutable deps : string list;
  mutable backup : Exec.Plan.t;
  mutable obj_tables : string list;
      (** tables any compiled plan opens — DDL-staleness tracking *)
  mutable obj_indexes : string list;
      (** indexes any compiled plan probes; a dropped or demoted one
          forces re-preparation from SQL before the next run *)
  mutable invalidated : bool;
  mutable fast_runs : int;
  mutable backup_runs : int;
  mutable last_used : int;  (** recency stamp for LRU eviction *)
}

type t

exception No_such_plan of string

val default_capacity : int
(** 64. *)

val create : ?capacity:int -> Softdb.t -> t
(** Also binds the facade's sys.plan_cache virtual table to this cache
    (via {!Softdb.set_plan_cache_source}).  [capacity] bounds the entry
    count (default {!default_capacity}); raises [Invalid_argument] when
    < 1. *)

val dependencies_of : Opt.Explain.report -> string list
(** The rewrite-critical SC names of a report (twins excluded). *)

val prepare : t -> name:string -> string -> entry
(** Optimize and cache under [name] (replacing an entry of that name).
    Past capacity, the least-recently-used entry is evicted. *)

val find : t -> string -> entry option

val find_or_prepare : t -> name:string -> string -> entry * bool
(** The atomic find-then-prepare: [true] iff this call created the
    entry.  Sessions prepare concurrently (under a shared read lock),
    so the naive [find]-miss-then-[prepare] sequence lets two of them
    both miss and both insert; here the insert re-checks under the
    cache lock, so exactly one of N racing callers reports creation and
    the rest bind to the winner's entry. *)

val is_valid : t -> entry -> bool

type cache_stats = {
  entries : int;
  valid : int;
  fast_runs : int;
  backup_runs : int;
  capacity : int;
  evictions : int;  (** LRU evictions since creation *)
}

val stats : t -> cache_stats
(** Aggregate fast-vs-backup run counts across all entries, plus the
    capacity bound and total evictions. *)

val execute : t -> string -> Exec.Executor.result
(** Fast plan while valid, backup plan once a dependency is overturned.
    If DDL made the compiled plans stale first (a referenced table or
    index dropped, a referenced index demoted), the entry is re-prepared
    from its SQL before running — counted in the
    [plan_cache.ddl_repreparations] metric — so a stale plan is never
    opened. *)

val reprepare : t -> unit
(** Re-optimize every invalidated or DDL-stale entry against the current
    catalog — the "recompiled before they can be used again" path.
    Entries whose recompilation fails (table dropped) are left for
    {!execute} to surface the error. *)

val pp_entry : Format.formatter -> entry -> unit
