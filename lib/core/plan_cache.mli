(** Prepared plans and ASC invalidation (paper §4.1).

    "Every pre-compiled query plan that employs a violated ASC in its plan
    must be dropped … One possible tactic is for a package to incorporate
    a 'backup' plan which is ASC-free.  If an ASC is overturned, a flag is
    raised and packages revert to the alternative plans."

    A prepared entry keeps the optimized plan, the names of the soft
    constraints its rewrites relied on, and a backup plan compiled with
    the soft-constraint machinery off.  Execution runs the fast plan while
    every rewrite-critical dependency is still Active, and the backup
    afterwards; twins (estimation-only) never invalidate — a plan chosen
    under stale statistics is merely sub-optimal. *)

type entry = {
  name : string;
  sql : string;
  query : Sqlfe.Ast.query;
  mutable report : Opt.Explain.report;
  mutable deps : string list;
  backup : Exec.Plan.t;
  mutable invalidated : bool;
  mutable fast_runs : int;
  mutable backup_runs : int;
}

type t

exception No_such_plan of string

val create : Softdb.t -> t
(** Also binds the facade's sys.plan_cache virtual table to this cache
    (via {!Softdb.set_plan_cache_source}). *)

val dependencies_of : Opt.Explain.report -> string list
(** The rewrite-critical SC names of a report (twins excluded). *)

val prepare : t -> name:string -> string -> entry
(** Optimize and cache under [name] (replacing an entry of that name). *)

val find : t -> string -> entry option

val is_valid : t -> entry -> bool

type cache_stats = {
  entries : int;
  valid : int;
  fast_runs : int;
  backup_runs : int;
}

val stats : t -> cache_stats
(** Aggregate fast-vs-backup run counts across all entries. *)

val execute : t -> string -> Exec.Executor.result
(** Fast plan while valid, backup plan once a dependency is overturned. *)

val reprepare : t -> unit
(** Re-optimize every invalidated entry against the current catalog —
    the "recompiled before they can be used again" path. *)

val pp_entry : Format.formatter -> entry -> unit
