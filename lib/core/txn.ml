(* A simple transaction layer: an undo log over catalog mutations plus a
   snapshot of the soft-constraint catalog.

   Paper §4.1 asks: a transaction violates (and so overturns) an ASC —
   "what then if transaction A aborts in the end anyway?  Is the ASC then
   re-instated?"  Here the answer is yes by construction: [rollback]
   undoes the data mutations in reverse order and restores every soft
   constraint's statement, kind, state and currency anchor to their
   values at [begin_], so an ASC dropped (or widened) only by the aborted
   transaction comes back exactly as it was.  Exception tables stay
   consistent throughout because the compensating operations flow through
   the same mutation listeners.

   Lifecycle events ([Began]/[Committed]/[Rolled_back]) let the
   durability layer ({!Recovery}) frame WAL records; the catalog restore
   goes through the {!Sc_catalog} setters for the same reason. *)

open Rel

type sc_snapshot = {
  snap_name : string;
  snap_statement : Soft_constraint.statement;
  snap_kind : Soft_constraint.kind;
  snap_state : Soft_constraint.state;
  snap_installed : int;
  snap_violations : int;
}

(* @guarded-by db.rwlock — a transaction exists only while its session
   owns the exclusive write lock (BEGIN..COMMIT) *)
type t = {
  id : int;
  sdb : Softdb.t;
  mutable log : Database.mutation list; (* newest first *)
  snapshots : sc_snapshot list;
  mutable active : bool;
  mutable recording : bool;
}

type event = Began of t | Committed of t | Rolled_back of t

exception Transaction_error of string
exception Rollback_incomplete of exn list

let fault_points = [ "txn.begin"; "txn.pre_commit"; "txn.rollback" ]

(* @guarded-by db.rwlock — only the write-lock owner begins, commits,
   or rolls back *)
let current : t option ref = ref None

(* @guarded-by db.rwlock *)
let next_id = ref 0

(* @guarded-by db.rwlock *)
let listeners : (event -> unit) list ref = ref []

let on_event f = listeners := f :: !listeners
let notify ev = List.iter (fun f -> f ev) !listeners

let id t = t.id
let softdb t = t.sdb

let snapshot_catalog catalog =
  List.map
    (fun (sc : Soft_constraint.t) ->
      {
        snap_name = sc.Soft_constraint.name;
        snap_statement = sc.Soft_constraint.statement;
        snap_kind = sc.Soft_constraint.kind;
        snap_state = sc.Soft_constraint.state;
        snap_installed = sc.Soft_constraint.installed_at_mutations;
        snap_violations = sc.Soft_constraint.violation_count;
      })
    (Sc_catalog.all catalog)

(* one recording listener per database, routed through [current], so
   repeated transactions do not accumulate listeners *)
(* @guarded-by db.rwlock *)
let registered : Database.t list ref = ref []

let ensure_listener sdb =
  let db = Softdb.db sdb in
  if not (List.exists (fun d -> d == db) !registered) then begin
    registered := db :: !registered;
    Database.on_mutation db (fun m ->
        match !current with
        | Some t when t.active && t.recording && Softdb.db t.sdb == db ->
            t.log <- m :: t.log
        | _ -> ())
  end

let begin_ sdb =
  (match !current with
  | Some t when t.active ->
      raise (Transaction_error "a transaction is already active")
  | _ -> ());
  ensure_listener sdb;
  Obs.Fault.point "txn.begin";
  incr next_id;
  let t =
    {
      id = !next_id;
      sdb;
      log = [];
      snapshots = snapshot_catalog (Softdb.catalog sdb);
      active = true;
      recording = true;
    }
  in
  current := Some t;
  notify (Began t);
  t

let commit t =
  if not t.active then raise (Transaction_error "transaction is not active");
  Obs.Fault.point "txn.pre_commit";
  t.active <- false;
  current := None;
  notify (Committed t)

let rollback t =
  if not t.active then raise (Transaction_error "transaction is not active");
  let db = Softdb.db t.sdb in
  (* stop recording, then compensate newest-first; deleted rows come back
     under their original rid so older undo records still apply.  However
     the compensation ends, the transaction is over — a failure mid-undo
     must not leave a phantom active transaction — and the abort is
     published so the WAL frames it. *)
  Fun.protect ~finally:(fun () ->
      t.active <- false;
      current := None;
      notify (Rolled_back t))
  @@ fun () ->
  t.recording <- false;
  Obs.Fault.point "txn.rollback";
  (* a listener blowing up on one compensating operation must not strand
     the rest of the undo log: collect, keep compensating, re-raise *)
  let errors = ref [] in
  let guarded f = try f () with e -> errors := e :: !errors in
  List.iter
    (fun m ->
      guarded (fun () ->
          match m with
          | Database.Inserted { table; rid; _ } ->
              ignore (Database.delete db ~table rid)
          | Database.Deleted { table; rid; row } ->
              Database.restore db ~table rid (Tuple.copy row)
          | Database.Updated { table; rid; before; _ } ->
              Database.update db ~table rid (Tuple.copy before)))
    t.log;
  (* restore the soft-constraint catalog: statements widened or states
     overturned by this transaction come back (§4.1) *)
  let catalog = Softdb.catalog t.sdb in
  List.iter
    (fun snap ->
      match Sc_catalog.find catalog snap.snap_name with
      | Some sc ->
          guarded (fun () ->
              if sc.Soft_constraint.statement <> snap.snap_statement then
                Sc_catalog.set_statement catalog sc snap.snap_statement;
              Sc_catalog.set_kind catalog sc snap.snap_kind;
              Sc_catalog.set_state catalog sc snap.snap_state;
              Sc_catalog.set_anchor catalog sc snap.snap_installed;
              Sc_catalog.set_violations catalog sc snap.snap_violations)
      | None -> ())
    t.snapshots;
  match List.rev !errors with
  | [] -> ()
  | errs -> raise (Rollback_incomplete errs)

let mutation_count t = List.length t.log

(* After a simulated crash the in-flight transaction is dead, not rolled
   back: the crash matrix clears it without compensating (recovery is
   what re-establishes the invariants). *)
let abandon_current () =
  (match !current with
  | Some t ->
      t.active <- false;
      t.recording <- false
  | None -> ());
  current := None

(* Run [f] atomically: commit on success, roll back on exception. *)
let atomically sdb f =
  let t = begin_ sdb in
  match f () with
  | result ->
      commit t;
      Ok result
  | exception e ->
      rollback t;
      Error e
