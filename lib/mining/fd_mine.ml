(* Functional-dependency discovery (paper §2: "with a good FD mining tool,
   FD information could be made available as SCs").

   A bounded levelwise search in the style of TANE: candidate left-hand
   sides grow up to [max_lhs] attributes; X → a is tested by partition
   refinement; only *minimal* FDs are returned (no proper subset of X
   already determines a).  Keys are excluded when [exclude_keys] names
   them, since key FDs are already known to the optimizer. *)

(* [Refine] is this library's TANE attribute-partition module; the alias
   keeps it visible past [open Rel], whose Partition is table sharding. *)
module Refine = Partition
open Rel

type fd = { table : string; lhs : string list; rhs : string }

let pp_fd ppf f =
  Fmt.pf ppf "%s: %a -> %s" f.table
    Fmt.(list ~sep:(any ", ") string)
    f.lhs f.rhs

(* sorted-list subset test *)
let subset a b = List.for_all (fun x -> List.mem x b) a

let mine ?(max_lhs = 2) ?(exclude_keys = []) table =
  let schema = Table.schema table in
  let cols =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun k -> String.lowercase_ascii k
                       = String.lowercase_ascii c)
             exclude_keys))
      (Schema.column_names schema)
  in
  let pos = List.map (fun c -> (c, Schema.index_exn schema c)) cols in
  let part1 = List.map (fun (c, p) -> (c, Refine.of_column table p)) pos in
  let partition_of cols_sorted =
    Refine.of_columns table
      (List.map (fun c -> List.assoc c pos) cols_sorted)
  in
  let found = ref [] in
  (* level 1: single-attribute lhs *)
  List.iter
    (fun (x, px) ->
      List.iter
        (fun (a, _) ->
          if a <> x then
            let pxa = partition_of [ x; a ] in
            if Refine.refines ~lhs:px ~lhs_with_rhs:pxa then
              found := { table = Table.name table; lhs = [ x ]; rhs = a }
                       :: !found)
        part1)
    part1;
  (* higher levels, minimality-pruned *)
  let rec combos k from =
    if k = 0 then [ [] ]
    else
      match from with
      | [] -> []
      | c :: rest ->
          List.map (fun tl -> c :: tl) (combos (k - 1) rest) @ combos k rest
  in
  for size = 2 to max_lhs do
    List.iter
      (fun lhs ->
        let p_lhs = partition_of lhs in
        List.iter
          (fun (a, _) ->
            if
              (not (List.mem a lhs))
              && not
                   (List.exists
                      (fun f ->
                        f.rhs = a && subset f.lhs lhs)
                      !found)
            then
              let p_all = partition_of (lhs @ [ a ]) in
              if Refine.refines ~lhs:p_lhs ~lhs_with_rhs:p_all then
                found := { table = Table.name table; lhs; rhs = a } :: !found)
          part1)
      (combos size cols)
  done;
  List.rev !found

(* Does [fd] hold exactly on the current data?  Revalidation oracle. *)
let holds table fd =
  let schema = Table.schema table in
  let lhs_pos = List.map (Schema.index_exn schema) fd.lhs in
  let rhs_pos = Schema.index_exn schema fd.rhs in
  let seen : (Tuple.t, Value.t) Hashtbl.t = Hashtbl.create 256 in
  let ok = ref true in
  Table.iter table ~f:(fun row ->
      if !ok then begin
        let key = Tuple.make (List.map (Tuple.get row) lhs_pos) in
        let v = Tuple.get row rhs_pos in
        match Hashtbl.find_opt seen key with
        | None -> Hashtbl.add seen key v
        | Some v0 -> if not (Value.equal_total v0 v) then ok := false
      end);
  !ok

(* Fraction of rows consistent with [fd] (rows in groups whose rhs agrees
   with the group's majority value): the confidence of a statistical FD. *)
let confidence table fd =
  let schema = Table.schema table in
  let lhs_pos = List.map (Schema.index_exn schema) fd.lhs in
  let rhs_pos = Schema.index_exn schema fd.rhs in
  let groups : (Tuple.t, (Value.t, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 256
  in
  let total = ref 0 in
  Table.iter table ~f:(fun row ->
      incr total;
      let key = Tuple.make (List.map (Tuple.get row) lhs_pos) in
      let v = Tuple.get row rhs_pos in
      let counts =
        match Hashtbl.find_opt groups key with
        | Some c -> c
        | None ->
            let c = Hashtbl.create 4 in
            Hashtbl.add groups key c;
            c
      in
      Hashtbl.replace counts v
        (1 + Option.value (Hashtbl.find_opt counts v) ~default:0));
  if !total = 0 then 1.0
  else begin
    let consistent = ref 0 in
    Hashtbl.iter
      (fun _ counts ->
        let best = Hashtbl.fold (fun _ n acc -> max n acc) counts 0 in
        consistent := !consistent + best)
      groups;
    float_of_int !consistent /. float_of_int !total
  end
