(* Threshold-based comparison of two measurement runs. *)

type direction = Exact | Higher_worse

type threshold = {
  prefix : string;
  direction : direction;
  rel_slack : float;
  abs_slack : float;
}

(* Work counters tolerate a sliver of drift (a plan tie broken the other
   way); semantic counts and result sizes must match exactly; q-error is
   a ratio, so it gets ratio-sized slack.  Longest prefix wins. *)
let default_thresholds =
  [
    { prefix = "rows_scanned"; direction = Higher_worse; rel_slack = 0.05;
      abs_slack = 16.0 };
    { prefix = "pages_read"; direction = Higher_worse; rel_slack = 0.05;
      abs_slack = 4.0 };
    { prefix = "index_probes"; direction = Higher_worse; rel_slack = 0.05;
      abs_slack = 16.0 };
    { prefix = "q_error."; direction = Higher_worse; rel_slack = 0.10;
      abs_slack = 0.1 };
    { prefix = "rewrites."; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = "plan_cache."; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = "sc_guard_fallbacks"; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = "wal."; direction = Exact; rel_slack = 0.0; abs_slack = 0.0 };
    (* per-partition scan counters: zero abs slack, so a pruned segment
       that starts contributing any work at all fails the gate *)
    { prefix = "partition."; direction = Higher_worse; rel_slack = 0.05;
      abs_slack = 0.0 };
    { prefix = "partitions"; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    (* concurrency-witness structure: a new acquisition-order edge means
       a new lock-nesting pattern slipped in (review it, then rebaseline);
       held depth deeper than the baseline means a longer lock chain *)
    { prefix = "lockdep.edges_observed"; direction = Higher_worse;
      rel_slack = 0.0; abs_slack = 0.0 };
    { prefix = "lockdep.max_held_depth"; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = "rows_returned"; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = "queries"; direction = Exact; rel_slack = 0.0;
      abs_slack = 0.0 };
    { prefix = ""; direction = Higher_worse; rel_slack = 0.05;
      abs_slack = 1e-9 };
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let threshold_for thresholds name =
  List.fold_left
    (fun best t ->
      if starts_with ~prefix:t.prefix name then
        match best with
        | Some b when String.length b.prefix >= String.length t.prefix -> best
        | _ -> Some t
      else best)
    None thresholds
  |> function
  | Some t -> t
  | None ->
      { prefix = ""; direction = Higher_worse; rel_slack = 0.05;
        abs_slack = 1e-9 }

type verdict = Regression | Improvement | Unchanged

type finding = {
  scenario : string;
  metric : string;
  old_v : float;
  new_v : float;
  verdict : verdict;
  gated : bool;
}

type outcome = {
  findings : finding list;
  missing_scenarios : string list;
  added_scenarios : string list;
  metrics_compared : int;
}

(* wall clock never fails the gate; flag only sizeable drift so reports
   stay quiet on noise *)
let wallclock_rel_slack = 0.25

let judge t ~old_v ~new_v =
  match t.direction with
  | Exact -> if old_v = new_v then Unchanged else Regression
  | Higher_worse ->
      let slack = (Float.abs old_v *. t.rel_slack) +. t.abs_slack in
      if new_v > old_v +. slack then Regression
      else if new_v < old_v -. slack then Improvement
      else Unchanged

let compare_section ~gated ~thresholds ~scenario ~old_metrics ~new_metrics acc =
  List.fold_left
    (fun (findings, compared) (name, old_v) ->
      match List.assoc_opt name new_metrics with
      | None ->
          (* a gated metric that disappeared is a lost measurement *)
          let verdict = if gated then Regression else Unchanged in
          ( { scenario; metric = name; old_v; new_v = Float.nan; verdict;
              gated }
            :: findings,
            compared + 1 )
      | Some new_v ->
          let verdict =
            if gated then judge (threshold_for thresholds name) ~old_v ~new_v
            else if
              Float.abs (new_v -. old_v)
              > Float.abs old_v *. wallclock_rel_slack +. 1e-9
            then if new_v > old_v then Regression else Improvement
            else Unchanged
          in
          ( { scenario; metric = name; old_v; new_v; verdict; gated }
            :: findings,
            compared + 1 ))
    acc old_metrics

let compare_runs ?(thresholds = default_thresholds) ~old_run ~new_run () =
  let open Measure in
  let find run id =
    List.find_opt (fun r -> r.scenario = id) run.scenarios
  in
  let missing =
    List.filter_map
      (fun r ->
        if find new_run r.scenario = None then Some r.scenario else None)
      old_run.scenarios
  in
  let added =
    List.filter_map
      (fun r ->
        if find old_run r.scenario = None then Some r.scenario else None)
      new_run.scenarios
  in
  let findings, compared =
    List.fold_left
      (fun acc old_r ->
        match find new_run old_r.scenario with
        | None -> acc
        | Some new_r ->
            compare_section ~gated:true ~thresholds ~scenario:old_r.scenario
              ~old_metrics:old_r.deterministic
              ~new_metrics:new_r.deterministic acc
            |> compare_section ~gated:false ~thresholds
                 ~scenario:old_r.scenario ~old_metrics:old_r.wallclock
                 ~new_metrics:new_r.wallclock)
      ([], 0) old_run.scenarios
  in
  let interesting =
    List.filter (fun f -> f.verdict <> Unchanged) (List.rev findings)
  in
  let rank f =
    match (f.verdict, f.gated) with
    | Regression, true -> 0
    | Regression, false -> 1
    | Improvement, _ -> 2
    | Unchanged, _ -> 3
  in
  let findings =
    List.stable_sort (fun a b -> Stdlib.compare (rank a) (rank b)) interesting
  in
  { findings; missing_scenarios = missing; added_scenarios = added;
    metrics_compared = compared }

let regressions o =
  List.filter (fun f -> f.gated && f.verdict = Regression) o.findings

let passed o = regressions o = [] && o.missing_scenarios = []

(* ---- rendering --------------------------------------------------------- *)

let pct f =
  if Float.is_nan f.new_v || f.old_v = 0.0 then "-"
  else Printf.sprintf "%+.1f%%" (100.0 *. (f.new_v -. f.old_v) /. f.old_v)

let value v = if Float.is_nan v then "(gone)" else Json.float_to_string v

let table ppf ~title rows =
  let header = [ "scenario"; "metric"; "old"; "new"; "delta" ] in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let line row =
    String.concat " | " (List.map2 (Printf.sprintf "%-*s") widths row)
  in
  Fmt.pf ppf "%s@.  %s@.  %s@." title (line header) rule;
  List.iter (fun row -> Fmt.pf ppf "  %s@." (line row)) rows

let rows_of fs =
  List.map (fun f -> [ f.scenario; f.metric; value f.old_v; value f.new_v;
                       pct f ])
    fs

let render ppf o =
  let regs = regressions o in
  let wall_regs =
    List.filter (fun f -> (not f.gated) && f.verdict = Regression) o.findings
  in
  let improvements =
    List.filter (fun f -> f.verdict = Improvement) o.findings
  in
  List.iter
    (fun s -> Fmt.pf ppf "MISSING scenario: %s (present in baseline)@." s)
    o.missing_scenarios;
  List.iter (fun s -> Fmt.pf ppf "new scenario: %s (not in baseline)@." s)
    o.added_scenarios;
  if regs <> [] then
    table ppf ~title:"REGRESSIONS (deterministic, gated):" (rows_of regs);
  if improvements <> [] then
    table ppf ~title:"improvements:" (rows_of improvements);
  if wall_regs <> [] then
    table ppf ~title:"wall-clock drift (report-only, not gated):"
      (rows_of wall_regs);
  Fmt.pf ppf "benchdiff: %d metrics compared, %d regression%s%s — %s@."
    o.metrics_compared (List.length regs)
    (if List.length regs = 1 then "" else "s")
    (match o.missing_scenarios with
    | [] -> ""
    | ms -> Printf.sprintf ", %d missing scenario(s)" (List.length ms))
    (if passed o then "PASS" else "FAIL")
