(* The scenario registry: workloads × soft-constraint modes, each
   producing one measurement record through the full pipeline.

   Determinism discipline: every generator seed is pinned HERE (never
   left to a default, never derived from the clock), every gated metric
   comes from instrumented execution or the deterministic metrics
   snapshot, and wall clock is confined to the wallclock section. *)

open Rel

type scale = Quick | Full

let scale_name = function Quick -> "quick" | Full -> "full"

let scale_of_name = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None

(* ---- pinned seeds ------------------------------------------------------- *)

let purchase_seed = 7
let project_seed = 11
let tpcd_seed = 23
let apb_seed = 51
let stream_seed = 97 (* the guarded scenario's violating insert *)

(* ---- fixtures ----------------------------------------------------------- *)

let purchase_config ?(late = 0.01) scale =
  {
    Workload.Purchase.default_config with
    rows = (match scale with Quick -> 6_000 | Full -> 60_000);
    late_fraction = late;
    seed = purchase_seed;
  }

let purchase_sdb ?late scale =
  let sdb = Core.Softdb.create () in
  Workload.Purchase.load ~config:(purchase_config ?late scale)
    (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let project_config scale =
  {
    Workload.Project.default_config with
    rows = (match scale with Quick -> 4_000 | Full -> 10_000);
    seed = project_seed;
  }

let project_sdb scale =
  let sdb = Core.Softdb.create () in
  Workload.Project.load ~config:(project_config scale) (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let tpcd_config scale =
  match scale with
  | Quick ->
      {
        Workload.Tpcd.default_config with
        customers = 200;
        orders = 1_000;
        sales_rows = 150;
        seed = tpcd_seed;
      }
  | Full -> { Workload.Tpcd.default_config with seed = tpcd_seed }

let tpcd_sdb scale =
  let sdb = Core.Softdb.create () in
  let config = tpcd_config scale in
  Workload.Tpcd.load ~config (Core.Softdb.db sdb);
  Workload.Tpcd.create_sales ~config (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let apb_config scale =
  match scale with
  | Quick ->
      {
        Workload.Apb.skus = 400;
        classes = 50;
        groups = 10;
        days = 120;
        customers = 100;
        facts = 6_000;
        seed = apb_seed;
      }
  | Full -> { Workload.Apb.default_config with seed = apb_seed }

let apb_sdb scale =
  let sdb = Core.Softdb.create () in
  Workload.Apb.load ~config:(apb_config scale) (Core.Softdb.db sdb);
  Core.Softdb.runstats sdb;
  sdb

let install_purchase_band sdb ~name ~confidence =
  let tbl = Database.table_exn (Core.Softdb.db sdb) "purchase" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"ship_date" ~col_lo:"order_date")
  in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence) in
  let kind =
    if band.Mining.Diff_band.confidence >= 1.0 then
      Core.Soft_constraint.Absolute
    else Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence
  in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name ~table:"purchase" ~kind
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)))

let install_project_band sdb ~confidence =
  let tbl = Database.table_exn (Core.Softdb.db sdb) "project" in
  let d =
    Option.get
      (Mining.Diff_band.mine tbl ~col_hi:"end_date" ~col_lo:"start_date")
  in
  let band = Option.get (Mining.Diff_band.band_with d ~confidence) in
  Core.Softdb.install_sc sdb
    (Core.Soft_constraint.make ~name:"proj_band" ~table:"project"
       ~kind:(Core.Soft_constraint.Statistical band.Mining.Diff_band.confidence)
       ~installed_at_mutations:(Table.mutations tbl)
       (Core.Soft_constraint.Diff_stmt (d, band)))

(* the APB hierarchies are exact FDs by construction *)
let install_apb_fds sdb =
  let db = Core.Softdb.db sdb in
  List.iter
    (fun (name, table, lhs, rhs) ->
      let tbl = Database.table_exn db table in
      Core.Softdb.install_sc sdb
        (Core.Soft_constraint.make ~name ~table
           ~kind:Core.Soft_constraint.Absolute
           ~installed_at_mutations:(Table.mutations tbl)
           (Core.Soft_constraint.Fd_stmt { Mining.Fd_mine.table; lhs; rhs })))
    [
      ("apb_class_group", "product", [ "class" ], "pgroup");
      ("apb_group_family", "product", [ "pgroup" ], "family");
      ("apb_month_quarter", "timedim", [ "month" ], "quarter");
    ]

(* the suite setups, named so the static checker can reuse them *)
let purchase_asc_sdb scale =
  let sdb = purchase_sdb scale in
  install_purchase_band sdb ~name:"ship_band_asc" ~confidence:1.0;
  sdb

let purchase_ssc_sdb scale =
  let sdb = purchase_sdb scale in
  install_purchase_band sdb ~name:"ship_band_ssc" ~confidence:0.99;
  sdb

let project_ssc_sdb scale =
  let sdb = project_sdb scale in
  install_project_band sdb ~confidence:0.9;
  sdb

let apb_fd_sdb scale =
  let sdb = apb_sdb scale in
  install_apb_fds sdb;
  sdb

(* ---- query suites ------------------------------------------------------- *)

let purchase_queries =
  List.map Workload.Queries.purchase_ship_eq
    [ Date.of_ymd 1999 3 15; Date.of_ymd 1999 6 15; Date.of_ymd 1999 11 2 ]
  @ [
      Workload.Queries.purchase_ship_range (Date.of_ymd 1999 7 1)
        (Date.of_ymd 1999 7 7);
    ]

(* a twin only helps when predicates exist on both band columns
   (Opt.Rewrite), so the SSC suite constrains order_date AND ship_date *)
let purchase_twin_queries =
  List.map
    (fun (lo, hi, ship) ->
      Printf.sprintf
        "SELECT * FROM purchase WHERE order_date BETWEEN DATE '%s' AND DATE \
         '%s' AND ship_date <= DATE '%s'"
        (Date.to_string lo) (Date.to_string hi) (Date.to_string ship))
    [
      (Date.of_ymd 1999 3 1, Date.of_ymd 1999 3 31, Date.of_ymd 1999 4 10);
      (Date.of_ymd 1999 6 1, Date.of_ymd 1999 6 30, Date.of_ymd 1999 7 5);
      (Date.of_ymd 1999 10 1, Date.of_ymd 1999 10 14, Date.of_ymd 1999 10 21);
    ]

let project_queries =
  List.map Workload.Queries.project_active_on
    [
      Date.of_ymd 1998 6 1; Date.of_ymd 1998 11 1; Date.of_ymd 1999 3 1;
      Date.of_ymd 1999 9 1;
    ]
  @ [ Workload.Queries.project_completed_within 7 ]

let tpcd_queries =
  Workload.Queries.join_elimination_suite
  @ [
      Workload.Queries.join_elimination_negative;
      Workload.Tpcd.sales_union_sql ~date_lo:(Date.of_ymd 1999 1 10)
        ~date_hi:(Date.of_ymd 1999 3 20);
      Workload.Tpcd.sales_union_sql ~date_lo:(Date.of_ymd 1999 5 5)
        ~date_hi:(Date.of_ymd 1999 5 25);
    ]

let apb_queries = Workload.Apb.queries

(* ---- suite execution ---------------------------------------------------- *)

(* Run every query through EXPLAIN ANALYZE, folding the instrumented
   actuals into the deterministic section.  With [partitions:n] the
   per-partition scan counters ({!Exec.Operators.Counters.partition_counts})
   are folded in as [partition.<i>.rows_scanned] / [partition.<i>.pages_read]
   — zero for a segment every query pruned, which the bench gate holds. *)
let run_suite ?flags ?partitions sdb sqls =
  let module E = Opt.Explain in
  let module C = Exec.Operators.Counters in
  let queries = ref 0
  and rows = ref 0
  and scanned = ref 0
  and pages = ref 0
  and probes = ref 0 in
  let part_rows, part_pages =
    match partitions with
    | Some n -> (Array.make n 0, Array.make n 0)
    | None -> ([||], [||])
  in
  let rewrites = ref [] in
  let bump rule n =
    let seen = try List.assoc rule !rewrites with Not_found -> 0 in
    rewrites := (rule, seen + n) :: List.remove_assoc rule !rewrites
  in
  let q_total_max = ref 1.0
  and q_total_log = ref 0.0
  and q_node_max = ref 1.0
  and q_node_log = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun sql ->
      let a = Core.Softdb.analyze ?flags sdb (Workload.Queries.parse sql) in
      incr queries;
      rows := !rows + List.length a.E.result.Exec.Executor.rows;
      let c = a.E.result.Exec.Executor.counters in
      scanned := !scanned + c.C.rows_scanned;
      pages := !pages + c.C.pages_read;
      probes := !probes + c.C.index_probes;
      List.iter
        (fun (_table, p, r, pg) ->
          if p >= 0 && p < Array.length part_rows then begin
            part_rows.(p) <- part_rows.(p) + r;
            part_pages.(p) <- part_pages.(p) + pg
          end)
        (C.partition_counts c);
      List.iter (fun (rule, n) -> bump rule n)
        (E.rewrite_counts a.E.a_report);
      q_total_max := Float.max !q_total_max a.E.total_q_error;
      q_total_log := !q_total_log +. Float.log (Float.max 1.0 a.E.total_q_error);
      q_node_max := Float.max !q_node_max (E.node_q_error_max a);
      q_node_log := !q_node_log +. Float.log (E.node_q_error_geomean a))
    sqls;
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let n = float_of_int (max 1 !queries) in
  let deterministic =
    [
      ("queries", float_of_int !queries);
      ("rows_returned", float_of_int !rows);
      ("rows_scanned", float_of_int !scanned);
      ("pages_read", float_of_int !pages);
      ("index_probes", float_of_int !probes);
      ("q_error.total_max", !q_total_max);
      ("q_error.total_geomean", Float.exp (!q_total_log /. n));
      ("q_error.node_max", !q_node_max);
      ("q_error.node_geomean", Float.exp (!q_node_log /. n));
      ( "rewrites.total",
        float_of_int (List.fold_left (fun a (_, n) -> a + n) 0 !rewrites) );
    ]
    @ List.map (fun (rule, n) -> ("rewrites." ^ rule, float_of_int n))
        !rewrites
    @ (match partitions with
      | None -> []
      | Some n ->
          ("partitions", float_of_int n)
          :: List.concat
               (List.init n (fun i ->
                    [
                      ( Printf.sprintf "partition.%d.rows_scanned" i,
                        float_of_int part_rows.(i) );
                      ( Printf.sprintf "partition.%d.pages_read" i,
                        float_of_int part_pages.(i) );
                    ])))
  in
  (deterministic, [ ("elapsed_ms", elapsed_ms) ])

let suite_result ~scenario ~workload ~mode ?flags ?partitions sdb sqls =
  let deterministic, wallclock = run_suite ?flags ?partitions sdb sqls in
  Measure.make_result ~scenario ~workload ~mode ~deterministic ~wallclock

(* ---- the guarded-fallback scenario -------------------------------------- *)

(* Prepared plans whose ASC is overturned mid-stream: the plan cache
   serves fast plans, then backup plans after a violating insert; LRU
   eviction is exercised by over-preparing. *)
let guarded_result scale =
  let sdb = purchase_sdb ~late:0.0 scale in
  install_purchase_band sdb ~name:"band" ~confidence:1.0;
  let cache = Core.Plan_cache.create ~capacity:4 sdb in
  let t0 = Unix.gettimeofday () in
  let dates = List.init 6 (fun i -> Date.of_ymd 1999 (1 + i) 15) in
  List.iteri
    (fun i day ->
      ignore
        (Core.Plan_cache.prepare cache
           ~name:(Printf.sprintf "q%d" i)
           (Workload.Queries.purchase_ship_eq day)))
    dates;
  let rows = ref 0 in
  let execute_resident () =
    List.iteri
      (fun i _ ->
        let name = Printf.sprintf "q%d" i in
        match Core.Plan_cache.find cache name with
        | None -> () (* evicted *)
        | Some _ ->
            let r = Core.Plan_cache.execute cache name in
            rows := !rows + List.length r.Exec.Executor.rows)
      dates
  in
  execute_resident ();
  (* one violating insert overturns the 100% band (drop policy) *)
  Workload.Purchase.insert_batch ~violating:1.0
    ~rng:(Stats.Rng.create stream_seed) ~start_id:9_000_000 ~count:1
    (Core.Softdb.db sdb);
  execute_resident ();
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let s = Core.Plan_cache.stats cache in
  let fallbacks =
    Obs.Metrics.counter (Core.Softdb.metrics sdb) "sc_guard_fallbacks"
  in
  Measure.make_result ~scenario:"purchase/guarded" ~workload:"purchase"
    ~mode:"guarded"
    ~deterministic:
      [
        ("rows_returned", float_of_int !rows);
        ("plan_cache.entries", float_of_int s.Core.Plan_cache.entries);
        ("plan_cache.valid", float_of_int s.Core.Plan_cache.valid);
        ("plan_cache.fast_runs", float_of_int s.Core.Plan_cache.fast_runs);
        ("plan_cache.backup_runs", float_of_int s.Core.Plan_cache.backup_runs);
        ("plan_cache.evictions", float_of_int s.Core.Plan_cache.evictions);
        ("sc_guard_fallbacks", float_of_int fallbacks);
      ]
    ~wallclock:[ ("elapsed_ms", elapsed_ms) ]

(* ---- the durability scenario -------------------------------------------- *)

let wal_result scale =
  let sdb = Core.Softdb.create () in
  let wal = Wal.create_memory () in
  let link = Core.Recovery.attach sdb wal in
  let t0 = Unix.gettimeofday () in
  let n = match scale with Quick -> 200 | Full -> 2_000 in
  ignore
    (Core.Softdb.exec sdb
       "CREATE TABLE wal_bench (id INT PRIMARY KEY, v INT NOT NULL, note \
        VARCHAR)");
  for i = 1 to n do
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf "INSERT INTO wal_bench VALUES (%d, %d, 'row%04d')" i
            (i * 37 mod 1_000) i))
  done;
  ignore
    (Core.Softdb.exec sdb
       (Printf.sprintf "UPDATE wal_bench SET v = 0 WHERE id <= %d" (n / 10)));
  ignore
    (Core.Softdb.exec sdb
       (Printf.sprintf "DELETE FROM wal_bench WHERE id > %d" (n - (n / 10))));
  ignore
    (Core.Softdb.exec sdb
       "ALTER TABLE wal_bench ADD CONSTRAINT v_small CHECK (v BETWEEN 0 AND \
        999) SOFT");
  let log_size records =
    List.fold_left
      (fun acc r -> acc + String.length (Wal.record_to_line r) + 1)
      0 records
  in
  let records = Wal.records wal in
  let bytes = log_size records in
  Core.Recovery.checkpoint link;
  let records' = Wal.records wal in
  let bytes' = log_size records' in
  Core.Recovery.detach link;
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Measure.make_result ~scenario:"purchase/wal" ~workload:"purchase"
    ~mode:"wal"
    ~deterministic:
      [
        ("wal.records", float_of_int (List.length records));
        ("wal.bytes", float_of_int bytes);
        ("wal.records_after_checkpoint", float_of_int (List.length records'));
        ("wal.bytes_after_checkpoint", float_of_int bytes');
      ]
    ~wallclock:[ ("elapsed_ms", elapsed_ms) ]

(* ---- the index-only scenario -------------------------------------------- *)

(* Covering-key queries answered from a secondary index on
   (ship_date, amount) alone: every block plans as an Index_only_scan, so
   the indexed pages_read is a fraction of the heap scan's.  The indexed
   counters gate directly — rewrites.index_only is Exact and pages_read
   Higher_worse under the default thresholds — so a change that silently
   loses the rewrite fails benchdiff; the unindexed run rides along as
   noindex.* to make the reduction visible in the report. *)
let purchase_idx_sdb scale =
  let sdb = purchase_sdb scale in
  ignore
    (Core.Softdb.exec sdb
       "CREATE INDEX purchase_ship_amt ON purchase (ship_date, amount)");
  sdb

let idx_queries =
  [
    "SELECT ship_date, amount FROM purchase WHERE ship_date = DATE \
     '1999-03-15'";
    "SELECT ship_date, amount FROM purchase WHERE ship_date BETWEEN DATE \
     '1999-06-01' AND DATE '1999-06-30'";
    "SELECT ship_date FROM purchase WHERE ship_date >= DATE '1999-11-01'";
    "SELECT amount, ship_date FROM purchase WHERE ship_date = DATE \
     '1999-02-14'";
  ]

let idx_result scale =
  let t0 = Unix.gettimeofday () in
  let plain, _ = run_suite (purchase_sdb scale) idx_queries in
  let indexed, _ = run_suite (purchase_idx_sdb scale) idx_queries in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let get k m = try List.assoc k m with Not_found -> 0.0 in
  Measure.make_result ~scenario:"purchase/idx" ~workload:"purchase" ~mode:"idx"
    ~deterministic:
      (indexed
      @ [
          ("noindex.pages_read", get "pages_read" plain);
          ("noindex.rows_scanned", get "rows_scanned" plain);
          ("pages_saved", get "pages_read" plain -. get "pages_read" indexed);
        ])
    ~wallclock:[ ("elapsed_ms", elapsed_ms) ]

(* ---- the partitioned scenarios ------------------------------------------ *)

(* Purchase partitioned by RANGE (id) into [parts] even segments, each
   segment's observed id band mined as an overturnable domain SC.  The
   1-segment variant is the same suite unpartitioned — the scatter-gather
   baseline the 4/8-way runs are read against. *)

let partition_bounds ~parts ~rows =
  List.init (parts - 1) (fun i -> rows * (i + 1) / parts)

let partitioned_purchase_sdb ~parts scale =
  let sdb = purchase_sdb scale in
  if parts > 1 then begin
    let rows = (purchase_config scale).Workload.Purchase.rows in
    ignore
      (Core.Softdb.exec sdb
         (Printf.sprintf
            "ALTER TABLE purchase PARTITION BY RANGE (id) BOUNDS (%s)"
            (String.concat ", "
               (List.map string_of_int (partition_bounds ~parts ~rows)))));
    ignore (Core.Softdb.mine_partition_domains sdb ~table:"purchase")
  end;
  sdb

(* Every predicate keys on the bottom eighth of the id domain — plus one
   probe past the maximum — so at 4 and 8 segments everything beyond the
   first segment or two is pruned, by routing alone or by the mined
   domain SCs, and must report zero in the per-partition section. *)
let partition_queries ~rows =
  [
    Printf.sprintf "SELECT * FROM purchase WHERE id < %d" (rows / 8);
    Printf.sprintf "SELECT id, amount FROM purchase WHERE id BETWEEN %d AND %d"
      (rows / 16) (rows / 10);
    Printf.sprintf "SELECT id, region FROM purchase WHERE id = %d" (rows / 12);
    Printf.sprintf "SELECT id FROM purchase WHERE id > %d" (rows + 50);
  ]

(* ---- registry ----------------------------------------------------------- *)

type t = {
  name : string;
  workload : string;
  mode : string;
  descr : string;
  exec : scale -> Measure.scenario_result;
}

let suite_scenario ~workload ~mode ~descr ?flags setup queries =
  let name = workload ^ "/" ^ mode in
  {
    name;
    workload;
    mode;
    descr;
    exec =
      (fun scale ->
        let sdb = setup scale in
        suite_result ~scenario:name ~workload ~mode ?flags sdb queries);
  }

let part_scenario parts =
  let mode = Printf.sprintf "part%d" parts in
  let name = "purchase/" ^ mode in
  {
    name;
    workload = "purchase";
    mode;
    descr =
      (if parts = 1 then
         "the id-range pruning suite unpartitioned: scatter-gather baseline"
       else
         Printf.sprintf
           "id-range pruning over %d range segments with mined domain SCs"
           parts);
    exec =
      (fun scale ->
        let sdb = partitioned_purchase_sdb ~parts scale in
        let rows = (purchase_config scale).Workload.Purchase.rows in
        suite_result ~scenario:name ~workload:"purchase" ~mode
          ?partitions:(if parts > 1 then Some parts else None)
          sdb
          (partition_queries ~rows));
  }

let all =
  List.sort
    (fun a b -> String.compare a.name b.name)
    [
      suite_scenario ~workload:"purchase" ~mode:"off"
        ~descr:"ship-date point/range queries, every rewrite disabled"
        ~flags:Opt.Rewrite.all_off purchase_sdb purchase_queries;
      suite_scenario ~workload:"purchase" ~mode:"asc"
        ~descr:"mined 100% diff band drives predicate introduction"
        purchase_asc_sdb purchase_queries;
      suite_scenario ~workload:"purchase" ~mode:"ssc"
        ~descr:"99% diff band drives twinned cardinality estimation"
        purchase_ssc_sdb purchase_twin_queries;
      {
        name = "purchase/guarded";
        workload = "purchase";
        mode = "guarded";
        descr =
          "prepared plans under ASC overturn: backup fallback + LRU eviction";
        exec = guarded_result;
      };
      {
        name = "purchase/wal";
        workload = "purchase";
        mode = "wal";
        descr = "durability path: logged bytes before/after checkpoint";
        exec = wal_result;
      };
      {
        name = "purchase/idx";
        workload = "purchase";
        mode = "idx";
        descr =
          "covering index answers the suite index-only: pages_read reduction \
           gated";
        exec = idx_result;
      };
      part_scenario 1;
      part_scenario 4;
      part_scenario 8;
      suite_scenario ~workload:"project" ~mode:"off"
        ~descr:"correlated-date queries under the independence assumption"
        ~flags:Opt.Rewrite.all_off project_sdb project_queries;
      suite_scenario ~workload:"project" ~mode:"ssc"
        ~descr:"90% duration band twins the correlated date predicates"
        project_ssc_sdb project_queries;
      suite_scenario ~workload:"tpcd" ~mode:"off"
        ~descr:"FK joins + 12-way union, every rewrite disabled"
        ~flags:Opt.Rewrite.all_off tpcd_sdb tpcd_queries;
      suite_scenario ~workload:"tpcd" ~mode:"asc"
        ~descr:"RI join elimination + CHECK-driven union-all pruning"
        tpcd_sdb tpcd_queries;
      suite_scenario ~workload:"apb" ~mode:"off"
        ~descr:"hierarchy rollups, every rewrite disabled"
        ~flags:Opt.Rewrite.all_off apb_sdb apb_queries;
      suite_scenario ~workload:"apb" ~mode:"asc"
        ~descr:"hierarchy FDs simplify GROUP BY / ORDER BY lists"
        apb_fd_sdb apb_queries;
    ]

(* ---- static-check fixtures ---------------------------------------------- *)

(* The suite scenarios as (name, database, workload) triples for the
   certificate checker and the differential rewrite check.  The guarded
   and wal scenarios are stateful pipelines rather than query suites, so
   they are exercised by their own tests instead. *)
type fixture = {
  fixture_name : string;
  fixture_setup : scale -> Core.Softdb.t;
  fixture_queries : string list;
}

let fixtures =
  [
    {
      fixture_name = "purchase/off";
      fixture_setup = (fun scale -> purchase_sdb scale);
      fixture_queries = purchase_queries;
    };
    {
      fixture_name = "purchase/asc";
      fixture_setup = purchase_asc_sdb;
      fixture_queries = purchase_queries;
    };
    {
      fixture_name = "purchase/ssc";
      fixture_setup = purchase_ssc_sdb;
      fixture_queries = purchase_twin_queries;
    };
    {
      (* queries pinned to the quick-scale id domain: the checker
         re-derives every partition prune from the query + catalog it is
         given, so the fixed bounds stay sound at any scale *)
      fixture_name = "purchase/part4";
      fixture_setup = partitioned_purchase_sdb ~parts:4;
      fixture_queries = partition_queries ~rows:6_000;
    };
    {
      fixture_name = "purchase/idx";
      fixture_setup = purchase_idx_sdb;
      fixture_queries = idx_queries;
    };
    {
      fixture_name = "project/off";
      fixture_setup = project_sdb;
      fixture_queries = project_queries;
    };
    {
      fixture_name = "project/ssc";
      fixture_setup = project_ssc_sdb;
      fixture_queries = project_queries;
    };
    {
      fixture_name = "tpcd/off";
      fixture_setup = tpcd_sdb;
      fixture_queries = tpcd_queries;
    };
    {
      fixture_name = "tpcd/asc";
      fixture_setup = tpcd_sdb;
      fixture_queries = tpcd_queries;
    };
    {
      fixture_name = "apb/off";
      fixture_setup = apb_sdb;
      fixture_queries = apb_queries;
    };
    {
      fixture_name = "apb/asc";
      fixture_setup = apb_fd_sdb;
      fixture_queries = apb_queries;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all

let run ?only ~scale ~label () =
  let selected =
    match only with
    | None -> all
    | Some names ->
        List.map
          (fun n ->
            match find n with
            | Some s -> s
            | None -> invalid_arg ("unknown scenario " ^ n))
          names
  in
  Measure.make_run ~label ~scale:(scale_name scale)
    (List.map (fun s -> s.exec scale) selected)
