(** The benchmark measurement record — the schema behind [BENCH.json].

    A {!run} is a set of scenario results, each split into two metric
    sections with different contracts:

    - [deterministic] — operator work counts (rows scanned / pages read /
      index probes), per-node q-error aggregates, rewrite fire counts,
      plan-cache and guard-fallback counters, WAL bytes.  Two runs of the
      same commit produce {e byte-identical} values here (fixed-seed data
      generation, no wall clock), so {!Diff} gates on them hard.
    - [wallclock] — elapsed times, throughput, latency percentiles.
      Machine- and load-dependent; carried in the same report but only
      ever {e reported}, never gated (the same discipline
      {!Obs.Metrics} applies to its timing store).

    The serialized form is schema-versioned; {!of_json} refuses a
    version it does not understand rather than mis-reading it. *)

type scenario_result = {
  scenario : string;  (** unique id, conventionally ["workload/mode"] *)
  workload : string;
  mode : string;
  deterministic : (string * float) list;  (** sorted by metric name *)
  wallclock : (string * float) list;  (** sorted by metric name *)
}

type run = {
  schema_version : int;
  label : string;
  scale : string;  (** ["quick"] or ["full"] *)
  scenarios : scenario_result list;  (** sorted by scenario id *)
}

val schema_version : int
(** The version this code writes; currently 1. *)

exception Schema_error of string
(** Unknown schema version or malformed record. *)

val make_result :
  scenario:string -> workload:string -> mode:string ->
  deterministic:(string * float) list -> wallclock:(string * float) list ->
  scenario_result
(** Sorts both metric sections by name. *)

val make_run : label:string -> scale:string -> scenario_result list -> run
(** Stamps {!schema_version} and sorts scenarios by id (duplicate ids
    raise {!Schema_error}). *)

val to_json : run -> Json.t
val of_json : Json.t -> run

val save : string -> run -> unit
(** Write the pretty-printed JSON to a file (trailing newline). *)

val load : string -> run
(** Raises {!Schema_error} on version/shape problems, {!Json.Parse_error}
    on malformed JSON, [Sys_error] on I/O. *)

val merge : run -> run -> run
(** [merge base extra]: fold [extra]'s scenarios into [base], replacing
    same-named scenarios — how a loadgen summary is folded into an
    engine report.  Raises {!Schema_error} on version mismatch. *)

val fingerprint : run -> string
(** Canonical serialization of the gated content only — schema version,
    scale, and every scenario's deterministic section (label and
    wall-clock stripped).  Byte-equal fingerprints ⇔ the runs are
    indistinguishable to the hard gate. *)
