(** The benchmark scenario registry: workloads × soft-constraint modes,
    each executing through the full parse → rewrite → plan → execute
    pipeline with per-node instrumentation ({!Opt.Explain.analyze}) and
    producing one {!Measure.scenario_result}.

    Modes follow the paper's machinery: [off] (every rewrite disabled —
    the oracle baseline), [asc] (absolute soft constraints driving
    result-changing rewrites), [ssc] (statistical constraints driving
    twinned cardinality estimation), [guarded] (prepared plans whose ASC
    is overturned mid-stream, exercising backup-plan fallback and the
    plan cache), [wal] (the durability path, measuring logged bytes),
    [idx] (a covering secondary index answers the suite index-only — the
    indexed pages_read/rows_scanned and the rewrites.index_only count
    gate, with the unindexed run alongside under the noindex prefix), and
    [part1]/[part4]/[part8] (purchase partitioned by RANGE (id) into 1, 4
    or 8 segments: partition pruning + scatter-gather, with per-partition
    scan counters in the deterministic section — pruned segments must
    report zero).

    Every data generator is seeded explicitly here — never from a
    default or the clock — so two runs of the same commit produce
    byte-identical deterministic sections. *)

type scale = Quick | Full

val scale_name : scale -> string
val scale_of_name : string -> scale option

type t = {
  name : string;  (** unique id: ["workload/mode"] *)
  workload : string;
  mode : string;
  descr : string;
  exec : scale -> Measure.scenario_result;
}

val all : t list
(** The registry, sorted by name. *)

val find : string -> t option
val names : string list

type fixture = {
  fixture_name : string;  (** matches the scenario name *)
  fixture_setup : scale -> Core.Softdb.t;
  fixture_queries : string list;
}

val fixtures : fixture list
(** The query-suite scenarios as (name, database, workload) triples for
    the static certificate checker ([softdb check]) and the differential
    rewrite check.  The stateful [guarded] and [wal] scenarios are not
    query suites and are exercised by their own tests. *)

val run :
  ?only:string list -> scale:scale -> label:string -> unit -> Measure.run
(** Execute the registry (or the [only] subset, by name — unknown names
    raise [Invalid_argument]) and package the results. *)
