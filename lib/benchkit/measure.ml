(* The BENCH.json schema: scenario results with a hard-gated
   deterministic section and a report-only wall-clock section. *)

type scenario_result = {
  scenario : string;
  workload : string;
  mode : string;
  deterministic : (string * float) list;
  wallclock : (string * float) list;
}

type run = {
  schema_version : int;
  label : string;
  scale : string;
  scenarios : scenario_result list;
}

let schema_version = 1

exception Schema_error of string

let sort_metrics ms =
  List.sort (fun (a, _) (b, _) -> String.compare a b) ms

let make_result ~scenario ~workload ~mode ~deterministic ~wallclock =
  {
    scenario;
    workload;
    mode;
    deterministic = sort_metrics deterministic;
    wallclock = sort_metrics wallclock;
  }

let sort_scenarios rs =
  let sorted =
    List.sort (fun a b -> String.compare a.scenario b.scenario) rs
  in
  let rec check = function
    | a :: (b :: _ as tl) ->
        if a.scenario = b.scenario then
          raise (Schema_error ("duplicate scenario " ^ a.scenario));
        check tl
    | _ -> ()
  in
  check sorted;
  sorted

let make_run ~label ~scale scenarios =
  { schema_version; label; scale; scenarios = sort_scenarios scenarios }

(* ---- JSON -------------------------------------------------------------- *)

let metrics_to_json ms =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) ms)

let metrics_of_json j =
  List.map (fun (k, v) -> (k, Json.to_float v)) (Json.to_obj j)

let result_to_json r =
  Json.Obj
    [
      ("scenario", Json.String r.scenario);
      ("workload", Json.String r.workload);
      ("mode", Json.String r.mode);
      ("deterministic", metrics_to_json r.deterministic);
      ("wallclock", metrics_to_json r.wallclock);
    ]

let result_of_json j =
  {
    scenario = Json.to_str (Json.member "scenario" j);
    workload = Json.to_str (Json.member "workload" j);
    mode = Json.to_str (Json.member "mode" j);
    deterministic = sort_metrics (metrics_of_json (Json.member "deterministic" j));
    wallclock = sort_metrics (metrics_of_json (Json.member "wallclock" j));
  }

let to_json run =
  Json.Obj
    [
      ("schema_version", Json.Float (float_of_int run.schema_version));
      ("label", Json.String run.label);
      ("scale", Json.String run.scale);
      ("scenarios", Json.List (List.map result_to_json run.scenarios));
    ]

let of_json j =
  let version =
    match Json.member "schema_version" j with
    | Json.Float f when Float.is_integer f -> int_of_float f
    | _ -> raise (Schema_error "missing schema_version")
  in
  if version <> schema_version then
    raise
      (Schema_error
         (Printf.sprintf "unsupported schema version %d (this build reads %d)"
            version schema_version));
  {
    schema_version = version;
    label = Json.to_str (Json.member "label" j);
    scale = Json.to_str (Json.member "scale" j);
    scenarios =
      sort_scenarios
        (List.map result_of_json (Json.to_list (Json.member "scenarios" j)));
  }

let save path run =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~indent:2 (to_json run));
      Out_channel.output_char oc '\n')

let load path =
  let text = In_channel.with_open_text path In_channel.input_all in
  of_json (Json.of_string text)

let merge base extra =
  if base.schema_version <> extra.schema_version then
    raise (Schema_error "schema version mismatch in merge");
  let replaced = List.map (fun r -> r.scenario) extra.scenarios in
  let kept =
    List.filter (fun r -> not (List.mem r.scenario replaced)) base.scenarios
  in
  { base with scenarios = sort_scenarios (kept @ extra.scenarios) }

(* Only what the hard gate sees: version, scale, and the deterministic
   metric sections, in canonical order — label and wall clock stripped. *)
let fingerprint run =
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Float (float_of_int run.schema_version));
         ("scale", Json.String run.scale);
         ( "scenarios",
           Json.List
             (List.map
                (fun r ->
                  Json.Obj
                    [
                      ("scenario", Json.String r.scenario);
                      ("deterministic", metrics_to_json r.deterministic);
                    ])
                run.scenarios) );
       ])
