(* A minimal JSON codec with a canonical printer: the deterministic
   sections of BENCH.json are compared byte-for-byte across runs, so the
   rendering must be a pure function of the value. *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string * int

(* ---- printing ---------------------------------------------------------- *)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_nan f then "null" (* JSON has no NaN *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (depth * indent) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Float f -> Buffer.add_string b (float_to_string f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj members ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            pad (depth + 1);
            escape_string b k;
            Buffer.add_char b ':';
            if indent > 0 then Buffer.add_char b ' ';
            go (depth + 1) item)
          members;
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ---- parsing ----------------------------------------------------------- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* the printer only emits \u00XX for control chars; decode
                      the BMP point as UTF-8 for general inputs *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors --------------------------------------------------------- *)

let shape_error what = raise (Parse_error ("expected " ^ what, 0))

let member name = function
  | Obj members -> ( match List.assoc_opt name members with
    | Some v -> v
    | None -> Null)
  | _ -> shape_error "object"

let to_float = function Float f -> f | _ -> shape_error "number"

let to_int = function
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> shape_error "integer"

let to_str = function String s -> s | _ -> shape_error "string"
let to_list = function List l -> l | _ -> shape_error "array"
let to_obj = function Obj m -> m | _ -> shape_error "object"
