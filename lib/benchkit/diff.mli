(** Plan-quality regression gating: compare two {!Measure.run}s under
    per-metric thresholds.

    Deterministic metrics gate {e hard}: an exact-class metric (rewrite
    counts, result cardinalities, guard fallbacks, WAL bytes, …) flags on
    {e any} change; a work-class metric (rows scanned, pages read, index
    probes) flags when it grows beyond a small relative+absolute slack; a
    q-error metric likewise.  Decreases in higher-is-worse metrics are
    reported as improvements, never failures.  Wall-clock metrics are
    compared with a generous slack and reported, but {e never} fail the
    gate.  A scenario present in the old run and missing from the new one
    is a coverage regression and fails. *)

type direction =
  | Exact  (** any change flags *)
  | Higher_worse  (** increase beyond slack flags; decrease = improvement *)

type threshold = {
  prefix : string;  (** metric-name prefix this rule governs *)
  direction : direction;
  rel_slack : float;  (** fraction of the old value *)
  abs_slack : float;
}

val default_thresholds : threshold list
(** Longest-prefix match; a catch-all [""] rule closes the table. *)

val threshold_for : threshold list -> string -> threshold

type verdict = Regression | Improvement | Unchanged

type finding = {
  scenario : string;
  metric : string;
  old_v : float;
  new_v : float;
  verdict : verdict;
  gated : bool;  (** false for wall-clock findings: report-only *)
}

type outcome = {
  findings : finding list;  (** only changed metrics, regressions first *)
  missing_scenarios : string list;  (** in old, absent from new *)
  added_scenarios : string list;  (** in new, absent from old *)
  metrics_compared : int;
}

val compare_runs :
  ?thresholds:threshold list -> old_run:Measure.run -> new_run:Measure.run ->
  unit -> outcome

val regressions : outcome -> finding list
(** The gated regressions only — the gate fails iff this (or
    [missing_scenarios]) is non-empty. *)

val passed : outcome -> bool

val render : Format.formatter -> outcome -> unit
(** A readable verdict: a table of gated regressions (if any), then
    improvements and report-only wall-clock drift, then a summary line. *)
