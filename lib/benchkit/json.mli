(** A minimal, dependency-free JSON codec for the benchmark harness.

    The printer is {e canonical}: object member order is preserved as
    constructed, floats that carry an integral value print without a
    fraction, and all other floats print with round-trip precision
    ([%.17g]) — so serializing the same value twice yields byte-identical
    text, the property the deterministic sections of [BENCH.json] are
    gated on.  The parser accepts standard JSON (objects, arrays,
    strings, numbers, booleans, null) and raises {!Parse_error} with a
    character offset on malformed input. *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string * int
(** Message and character offset. *)

val to_string : ?indent:int -> t -> string
(** [indent] > 0 pretty-prints with that step; 0 (default) is compact. *)

val of_string : string -> t
(** Raises {!Parse_error}. *)

(** {1 Accessors} — raise {!Parse_error} (offset 0) on shape mismatch,
    so decoding errors surface with a message rather than [Match_failure]. *)

val member : string -> t -> t
(** Object member; {!Null} when absent. *)

val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list

val float_to_string : float -> string
(** The canonical number rendering used by {!to_string}, exported so
    fingerprints and JSON text agree on every digit. *)
