(** Partition-constraint cardinality bounds (paper §2: constraint-like
    characterizations feeding the estimator).

    For an equi-join whose two sides are partitioned identically on the
    join columns, only same-numbered segments can produce matches, so
    the output is at most [Σᵢ left(i) · right(i)] — the {e aligned join
    cap}.  The planner feeds this to join ordering as an upper bound on
    the estimated output cardinality. *)

val aligned_join_cap : left:int array -> right:int array -> float
(** [Σᵢ left.(i) * right.(i)] over the common prefix of the two
    per-segment row-count arrays. *)

val cross_product : left:int array -> right:int array -> float
(** [Σ left · Σ right]: the cap's trivial upper bound. *)

val alignment_gain : left:int array -> right:int array -> float
(** [aligned_join_cap / cross_product] in [0, 1] — how much the
    partition constraints shrink the worst case (1.0 when either side is
    empty). *)
