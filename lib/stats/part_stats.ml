(* Partition-constraint cardinality bounds.

   When two tables are partitioned the same way on their join columns,
   the partition constraints guarantee that rows of segment [i] on one
   side can only match rows of segment [i] on the other: a range bound
   set confines a column value to exactly one interval, and a hash
   function routes equal values to equal buckets.  The join output is
   therefore bounded by the sum of per-segment products rather than the
   full cross product — often a much tighter cap than independence-based
   estimates when the segment sizes are skewed. *)

let aligned_join_cap ~left ~right =
  let n = min (Array.length left) (Array.length right) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (float_of_int left.(i) *. float_of_int right.(i))
  done;
  !acc

let cross_product ~left ~right =
  let sum a = Array.fold_left ( + ) 0 a in
  float_of_int (sum left) *. float_of_int (sum right)

let alignment_gain ~left ~right =
  let cross = cross_product ~left ~right in
  if cross <= 0.0 then 1.0 else aligned_join_cap ~left ~right /. cross
