(** Static lock-order analysis: checks every mutex / condition / rwlock
    acquisition site against declared
    [@lock-order <name> rank=<int> [reentrant]] ranks and per-site
    [@acquires <name> [while <held> ...]] /
    [@waits <name> [while <held> ...]] annotations (grammar in {!Ann}).
    Unannotated acquisition tokens, undeclared locks (acquired,
    waited-on, or held), conflicting declarations, duplicate ranks, and
    rank inversions are all errors. *)

val tokens : string list
(** The raw source tokens treated as lock acquisitions. *)

val lint_sources : (string * string) list -> Diag.t list
(** [lint_sources [(filename, contents); ...]] lints in-memory sources;
    declarations are aggregated across all of them. *)

val lint_files : string list -> Diag.t list
(** Read the given files and lint them. *)
