(* Assembles the three static-analysis passes behind [softdb check]:

   1. certificate checking + twin isolation over a set of fixtures
      (name, database, query workload) — the caller supplies them, so
      this library does not depend on any particular scenario registry;
   2. the catalog linter over each fixture's SC catalog;
   3. the source lints (lock order, interface coverage) over a source
      root, when one is given.

   [run] returns the rendered report (the CI artifact) and the raw
   diagnostics; the CLI derives its exit code from [Diag.has_errors]. *)

type fixture = {
  fx_name : string;
  fx_sdb : Core.Softdb.t;
  fx_queries : string list;
}

let prefix fx diags =
  List.map
    (fun (d : Diag.t) ->
      { d with Diag.subject = fx.fx_name ^ "/" ^ d.Diag.subject })
    diags

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.sub s i m = sub || go (i + 1))
  in
  go 0

(* lib/check itself is excluded from the lock scan: it spells the raw
   acquisition tokens as string literals. *)
let lock_scan_files ~root =
  List.filter
    (fun p -> not (contains p (Filename.concat "lib" "check")))
    (Iface_lint.ml_files ~root)

let check_fixture ?(explain = false) buf fx =
  List.concat_map
    (fun sql ->
      match Cert.check_query fx.fx_sdb sql with
      | exception e ->
          [
            Diag.error ~pass:"cert" ~subject:fx.fx_name "%s raised %s" sql
              (Printexc.to_string e);
          ]
      | report, diags ->
          if explain then begin
            Buffer.add_string buf (Printf.sprintf "-- %s: %s\n" fx.fx_name sql);
            Buffer.add_string buf
              (Fmt.str "%a" Opt.Explain.pp_certificates report)
          end;
          prefix fx diags)
    fx.fx_queries

let run ?(explain = false) ?root fixtures =
  let buf = Buffer.create 4096 in
  let cert_diags = List.concat_map (check_fixture ~explain buf) fixtures in
  let catalog_diags =
    List.concat_map (fun fx -> prefix fx (Catalog_lint.lint fx.fx_sdb)) fixtures
  in
  let source_diags =
    match root with
    | None -> []
    | Some root ->
        Lock_lint.lint_files (lock_scan_files ~root) @ Iface_lint.lint ~root
  in
  let diags = cert_diags @ catalog_diags @ source_diags in
  Buffer.add_string buf (Diag.render diags);
  (Buffer.contents buf, diags)
