(* Assembles the static-analysis passes behind [softdb check]:

   1. certificate checking + twin isolation over a set of fixtures
      (name, database, query workload) — the caller supplies them, so
      this library does not depend on any particular scenario registry;
   2. the catalog linter over each fixture's SC catalog;
   3. the source lints (lock order, guarded-by, interface coverage)
      over a source root, when one is given;
   4. the lockdep cross-validation, when an {!Obs.Lockdep} edge-graph
      dump from an instrumented run is given alongside the root.

   [run] returns the rendered report (the CI artifact) and the raw
   diagnostics; the CLI derives its exit code from [Diag.has_errors].
   Diagnostics are sorted (pass, subject, message, severity) so the
   report is deterministic and CI can diff the committed one. *)

type fixture = {
  fx_name : string;
  fx_sdb : Core.Softdb.t;
  fx_queries : string list;
}

let prefix fx diags =
  List.map
    (fun (d : Diag.t) ->
      { d with Diag.subject = fx.fx_name ^ "/" ^ d.Diag.subject })
    diags

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.sub s i m = sub || go (i + 1))
  in
  go 0

(* lib/check itself is excluded from the lock scan: it spells the raw
   acquisition tokens as string literals. *)
let lock_scan_files ~root =
  List.filter
    (fun p -> not (contains p (Filename.concat "lib" "check")))
    (Iface_lint.ml_files ~root)

(* The guarded-by lint covers the concurrent subsystems — the libraries
   whose state is shared across the server's domains and threads.  The
   single-threaded front/mid layers (sqlfe, opt, exec, rel, …) keep
   their mutability rules out of scope. *)
let guard_dirs = [ "srv"; "core"; "obs"; "idx"; "part" ]

let guard_scan_files ~root =
  List.filter
    (fun p ->
      List.exists
        (fun d ->
          contains p (Filename.concat "lib" d ^ Filename.dir_sep))
        guard_dirs)
    (Iface_lint.ml_files ~root)

let check_fixture ?(explain = false) buf fx =
  List.concat_map
    (fun sql ->
      match Cert.check_query fx.fx_sdb sql with
      | exception e ->
          [
            Diag.error ~pass:"cert" ~subject:fx.fx_name "%s raised %s" sql
              (Printexc.to_string e);
          ]
      | report, diags ->
          if explain then begin
            Buffer.add_string buf (Printf.sprintf "-- %s: %s\n" fx.fx_name sql);
            Buffer.add_string buf
              (Fmt.str "%a" Opt.Explain.pp_certificates report)
          end;
          prefix fx diags)
    fx.fx_queries

(* deterministic report order: by pass, then subject, then message *)
let sort_diags diags =
  List.sort
    (fun (a : Diag.t) (b : Diag.t) ->
      compare
        (a.Diag.pass, a.Diag.subject, a.Diag.message, a.Diag.severity)
        (b.Diag.pass, b.Diag.subject, b.Diag.message, b.Diag.severity))
    diags

let run ?(explain = false) ?root ?lockdep_graph fixtures =
  let buf = Buffer.create 4096 in
  let cert_diags = List.concat_map (check_fixture ~explain buf) fixtures in
  let catalog_diags =
    List.concat_map (fun fx -> prefix fx (Catalog_lint.lint fx.fx_sdb)) fixtures
  in
  let source_diags =
    match root with
    | None -> []
    | Some root ->
        Lock_lint.lint_files (lock_scan_files ~root)
        @ Guard_lint.lint_files (guard_scan_files ~root)
        @ Iface_lint.lint ~root
  in
  let lockdep_diags =
    match (lockdep_graph, root) with
    | None, _ -> []
    | Some path, Some root ->
        Lockdep_lint.lint_file
          ~sources:(Ann.read_sources (lock_scan_files ~root))
          path
    | Some path, None ->
        [
          Diag.error ~pass:"lockdep" ~subject:path
            "a lockdep graph needs a source root for the rank table";
        ]
  in
  let diags =
    sort_diags (cert_diags @ catalog_diags @ source_diags @ lockdep_diags)
  in
  Buffer.add_string buf (Diag.render diags);
  (Buffer.contents buf, diags)
