(* Cross-validation of the runtime lockdep witness against the static
   rank table — the dynamic half of the concurrency suite.

   The witness ({!Obs.Lockdep}) dumps the acquisition-order edge graph a
   real run exhibited; the [@lock-order] table declares the order the
   sources promise.  Each checks the other:

   - every observed edge (held -> acquired) must name declared locks and
     go strictly uphill in rank — an edge the table forbids means the
     annotations under-declare what the server really does;
   - any violation the witness caught live (non-reentrant re-acquisition,
     a cycle in the edge graph) is an error verbatim;
   - every declared rank must have been exercised by the run — a rank no
     traffic ever touches is a stale table row the static lint would
     keep trusting forever — unless it carries [lockdep-waive] with the
     reason beside it.

   The static passes prove properties of code that annotations describe;
   this pass is the reply: the described discipline is the one the
   binary actually runs. *)

let pass = "lockdep"

let lint_graph ~decls (g : Obs.Lockdep.graph) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let subject = "lockdep-graph" in
  let declared name : Ann.decl option = Hashtbl.find_opt decls name in
  List.iter
    (fun (held, acquired, count) ->
      match (declared held, declared acquired) with
      | None, _ ->
          add
            (Diag.error ~pass ~subject
               "observed edge %s -> %s references undeclared lock %s" held
               acquired held)
      | _, None ->
          add
            (Diag.error ~pass ~subject
               "observed edge %s -> %s references undeclared lock %s" held
               acquired acquired)
      | Some dh, Some da ->
          if held = acquired then begin
            if not dh.Ann.d_reentrant then
              add
                (Diag.error ~pass ~subject
                   "observed re-acquisition of non-reentrant lock %s (%d \
                    time(s))"
                   held count)
          end
          else if dh.Ann.d_rank >= da.Ann.d_rank then
            add
              (Diag.error ~pass ~subject
                 "observed lock-order inversion: %s (rank %d) acquired while \
                  holding %s (rank %d), %d time(s) — the rank table forbids \
                  this edge"
                 acquired da.Ann.d_rank held dh.Ann.d_rank count))
    g.Obs.Lockdep.g_edges;
  List.iter
    (fun v -> add (Diag.error ~pass ~subject "runtime witness violation: %s" v))
    g.Obs.Lockdep.g_violations;
  (* stale ranks: the run is the table's liveness proof *)
  let exercised = Hashtbl.create 32 in
  List.iter (fun l -> Hashtbl.replace exercised l ()) g.Obs.Lockdep.g_locks;
  Hashtbl.fold (fun _ d acc -> d :: acc) decls []
  |> List.sort (fun (a : Ann.decl) b -> compare a.Ann.d_rank b.Ann.d_rank)
  |> List.iter (fun (d : Ann.decl) ->
         if
           (not (Hashtbl.mem exercised d.Ann.d_name))
           && not d.Ann.d_waived
         then
           add
             (Diag.error ~pass ~subject
                "stale rank: %s (rank %d) was never exercised by the lockdep \
                 run — retire it or mark it lockdep-waive with the reason"
                d.Ann.d_name d.Ann.d_rank));
  List.rev !diags

let lint_dump ~sources text =
  match Obs.Lockdep.parse text with
  | None ->
      [
        Diag.error ~pass ~subject:"lockdep-graph"
          "not a lockdep edge-graph dump (missing 'lockdep' header line)";
      ]
  | Some g ->
      let decls = Ann.decl_table (Ann.collect_decls sources) in
      lint_graph ~decls g

let lint_file ~sources path =
  match Ann.read_file path with
  | exception Sys_error m ->
      [
        Diag.error ~pass ~subject:path "cannot read lockdep graph: %s" m;
      ]
  | text -> lint_dump ~sources text
