(** The catalog linter (tentpole pass 2): contradictory SCs (errors),
    duplicate / subsumed soft FDs, SSCs at or below the planner's use
    threshold, and exception tables grown past the rewrite-profitability
    bound (warnings). *)

val exception_growth_bound : float
(** Exception-table rows beyond this fraction of the base table make the
    exception-union rewrite unprofitable (default 0.1). *)

val lint : Core.Softdb.t -> Diag.t list
