(** Assembles the certificate, catalog, lock-order, and
    interface-coverage passes behind [softdb check]. *)

type fixture = {
  fx_name : string;
  fx_sdb : Core.Softdb.t;
  fx_queries : string list;
}

val lock_scan_files : root:string -> string list
(** The [.ml] files the lock lint scans: everything under [root]/lib
    except lib/check itself (which spells the acquisition tokens as
    string literals). *)

val run :
  ?explain:bool ->
  ?root:string ->
  fixture list ->
  string * Diag.t list
(** Run every pass; returns the rendered report and the diagnostics.
    [explain] prepends each fixture query's certificates to the report;
    [root] enables the source lints. *)
