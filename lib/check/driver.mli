(** Assembles the certificate, catalog, lock-order, guarded-by,
    interface-coverage, and lockdep cross-validation passes behind
    [softdb check]. *)

type fixture = {
  fx_name : string;
  fx_sdb : Core.Softdb.t;
  fx_queries : string list;
}

val lock_scan_files : root:string -> string list
(** The [.ml] files the lock lint scans: everything under [root]/lib
    except lib/check itself (which spells the acquisition tokens as
    string literals). *)

val guard_scan_files : root:string -> string list
(** The [.ml] files the guarded-by lint scans: the concurrent
    subsystems (lib/srv, lib/core, lib/obs, lib/idx, lib/part). *)

val run :
  ?explain:bool ->
  ?root:string ->
  ?lockdep_graph:string ->
  fixture list ->
  string * Diag.t list
(** Run every pass; returns the rendered report and the diagnostics,
    sorted (pass, subject, message) so the report is deterministic.
    [explain] prepends each fixture query's certificates to the report;
    [root] enables the source lints; [lockdep_graph] names an
    {!Obs.Lockdep} dump to cross-validate against the rank table
    (requires [root]). *)
