(** The independent certificate checker (tentpole pass 1): re-derives
    the soundness of every fired rewrite from the live SC catalog,
    without trusting the rewriter.  See the implementation header for
    the rule list. *)

(** What a certificate premise resolves to. *)
type basis =
  | Hard  (** declared (hard or informational) IC: needs no guard *)
  | Soft_absolute  (** overturnable ASC: must be guarded *)
  | Soft_statistical  (** SSC: estimation-only basis *)
  | Invalid of string  (** reason it is no valid basis *)

val basis_of : Core.Softdb.t -> string -> basis

val check_certificate :
  Core.Softdb.t ->
  guards:string list ->
  has_backup:bool ->
  Opt.Explain.certificate ->
  Diag.t list
(** Check one certificate against the catalog; exposed so tests can feed
    deliberately unsound hand-built certificates. *)

val check_report : Core.Softdb.t -> Opt.Explain.report -> Diag.t list
(** All certificate checks for an optimized report, plus the twin
    isolation pass (estimation-only flags; no twin predicate among the
    plan's executable predicates) and the backup-plan guarantee. *)

val check_query :
  ?flags:Opt.Rewrite.flags ->
  Core.Softdb.t ->
  string ->
  Opt.Explain.report * Diag.t list
(** Parse, optimize, and check one SQL query. *)
