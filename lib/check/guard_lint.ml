(* Guarded-by analysis: shared mutable state must declare its lock.

   The concurrent subsystems (lib/srv, lib/core, lib/obs, lib/idx,
   lib/part) keep their shared mutable state — [mutable] record fields,
   [Hashtbl.t]/[Queue.t]/[Atomic.t] fields, module-level refs — behind
   locks from the canonical [@lock-order] rank table.  Which lock guards
   which state used to live in prose comments; this pass makes it a
   checked annotation:

     (* @guarded-by <lock> *)       on the field, up to three lines
                                    above it, or above the record's
                                    opening brace (covering every field)
     (* @guarded-by none: <why> *)  explicitly unguarded (owner-confined
                                    state, single-threaded scaffolding,
                                    racy-by-design observability reads)

   Errors:
   - shared mutable state with no annotation in range;
   - an annotation naming an undeclared lock;
   - an annotation whose lock is never acquired or held by any
     [@acquires]/[@waits] site in the scanned sources — the guard is
     fiction, nothing can ever hold it around an access;
   - a dead [@lock-order] rank: a declared lock no site or state
     annotation references at all.

   The pass is lexical, like {!Lock_lint}: it sees declarations, not
   accesses.  Whether annotated state is *actually* touched under its
   lock at runtime is the dynamic half's job ({!Obs.Lockdep} +
   {!Lockdep_lint}); the two halves cross-validate through the shared
   rank table. *)

let pass = "guard"

let loc file i = Printf.sprintf "%s:%d" file (i + 1)

(* ---- detecting shared mutable state ---------------------------------------- *)

let mutable_container_types = [ "Hashtbl.t"; "Queue.t"; "Atomic.t" ]

let strip_comment line =
  match Ann.after line "(*" with
  | None -> line
  | Some tail ->
      String.sub line 0 (String.length line - String.length tail - 2)

let is_ident w =
  w <> ""
  && (match w.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
         | _ -> false)
       w

(* A record field whose very declaration is mutable state: a [mutable]
   field, or an immutable field of a mutable container type. *)
let field_decl line =
  let code = String.trim (strip_comment line) in
  let toks =
    String.map (fun c -> if c = '\t' then ' ' else c) code
    |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
  in
  match toks with
  | "mutable" :: name :: ":" :: _ when is_ident name -> Some name
  | name :: ":" :: _
    when is_ident name
         && List.exists (fun ty -> Ann.contains code ty)
              mutable_container_types ->
      Some name
  | _ -> (
      (* a second [mutable] field on the same line ({ a : int; mutable b
         : int }) is covered by the first detection on that line *)
      match Ann.after code "{ mutable " with
      | Some tail -> (
          match String.split_on_char ' ' tail with
          | name :: _ when is_ident name -> Some name
          | _ -> None)
      | None -> None)

(* A module-level mutable global: a column-0 [let] bound to a fresh ref
   or mutable container. *)
let global_decl line =
  if not (String.length line > 4 && String.sub line 0 4 = "let ") then None
  else
    let code = strip_comment line in
    if
      List.exists
        (fun mk -> Ann.contains code mk)
        [ "= ref "; "= Hashtbl.create"; "= Queue.create"; "= Atomic.make" ]
    then
      match String.split_on_char ' ' code with
      | "let" :: name :: _ when is_ident name -> Some name
      | _ -> None
    else None

(* ---- annotation binding ----------------------------------------------------- *)

let braces line =
  String.fold_left
    (fun (opens, closes) c ->
      match c with
      | '{' -> (opens + 1, closes)
      | '}' -> (opens, closes + 1)
      | _ -> (opens, closes))
    (0, 0) (strip_comment line)

(* Per-line block guard: a @guarded-by annotation followed (within three
   lines) by an opening brace covers every line until the brace closes. *)
let block_guards lines =
  let n = Array.length lines in
  let cover = Array.make n None in
  Array.iteri
    (fun i line ->
      match Ann.parse_ann line with
      | Some (Ann.Guarded_by g) ->
          let rec find_open j =
            if j > i + 3 || j >= n then None
            else
              let opens, closes = braces lines.(j) in
              if opens > 0 then Some (j, opens - closes) else find_open (j + 1)
          in
          (match find_open i with
          | None -> ()
          | Some (j, depth0) ->
              cover.(j) <- Some g;
              let rec walk k depth =
                if depth > 0 && k < n then begin
                  cover.(k) <- Some g;
                  let opens, closes = braces lines.(k) in
                  walk (k + 1) (depth + opens - closes)
                end
              in
              walk (j + 1) depth0)
      | _ -> ())
    lines;
  cover

let nearby_guard lines i =
  let rec go k =
    if k > 3 || i - k < 0 then None
    else
      match Ann.parse_ann lines.(i - k) with
      | Some (Ann.Guarded_by g) -> Some g
      | Some _ -> None (* a site annotation in between ends the search *)
      | None -> go (k + 1)
  in
  go 0

(* ---- the lint --------------------------------------------------------------- *)

(* Locks some annotated site can actually hold: every @acquires/@waits
   name plus everything in their while clauses. *)
let holdable_locks sources =
  let held = Hashtbl.create 32 in
  List.iter
    (fun (_, contents) ->
      List.iter
        (fun line ->
          match Ann.parse_ann line with
          | Some (Ann.Acquires (name, hs)) | Some (Ann.Waits (name, hs)) ->
              List.iter (fun l -> Hashtbl.replace held l ()) (name :: hs)
          | _ -> ())
        (Ann.lines_of contents))
    sources;
  held

let lint_sources sources =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let decls = Ann.decl_table (Ann.collect_decls sources) in
  let holdable = holdable_locks sources in
  List.iter
    (fun (file, contents) ->
      let lines = Array.of_list (Ann.lines_of contents) in
      let blocks = block_guards lines in
      Array.iteri
        (fun i line ->
          match
            match field_decl line with
            | Some n -> Some n
            | None -> global_decl line
          with
          | None -> ()
          | Some name -> (
              let guard =
                match Ann.parse_ann line with
                | Some (Ann.Guarded_by g) -> Some g
                | _ -> (
                    match nearby_guard lines i with
                    | Some g -> Some g
                    | None -> blocks.(i))
              in
              match guard with
              | None ->
                  add
                    (Diag.error ~pass ~subject:(loc file i)
                       "shared mutable state %s has no @guarded-by \
                        annotation (declare its lock, or @guarded-by none: \
                        <why>)"
                       name)
              | Some "none" -> ()
              | Some g ->
                  if not (Hashtbl.mem decls g) then
                    add
                      (Diag.error ~pass ~subject:(loc file i)
                         "@guarded-by references undeclared lock %s (not in \
                          the @lock-order table)"
                         g)
                  else if not (Hashtbl.mem holdable g) then
                    add
                      (Diag.error ~pass ~subject:(loc file i)
                         "@guarded-by %s: no @acquires/@waits site in the \
                          scanned sources ever holds this lock, so %s cannot \
                          be accessed under it"
                         g name)))
        lines)
    sources;
  (* dead ranks: a declared lock nothing references is a stale table row *)
  let refs = Ann.referenced_locks sources in
  Hashtbl.iter
    (fun name (d : Ann.decl) ->
      if not (Hashtbl.mem refs name) then
        add
          (Diag.error ~pass ~subject:(loc d.Ann.d_file (d.Ann.d_line - 1))
             "dead @lock-order rank: %s (rank %d) is referenced by no \
              @acquires, @waits, held clause, or @guarded-by"
             name d.Ann.d_rank))
    decls;
  List.rev !diags

let lint_files paths = lint_sources (Ann.read_sources paths)
