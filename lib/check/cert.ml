(* The independent certificate checker (tentpole pass 1).

   The rewriter emits, for every fired transformation, a certificate
   naming its SC premises and the structural plan delta
   ({!Opt.Rewrite.applied}).  This module re-derives soundness from the
   live catalog without trusting the rewriter:

   - every premise must resolve to a declared IC or a currently-valid
     catalog SC;
   - a result-changing delta may not rest on a statistical SC — only
     twins (estimation-only) may, and their payload must carry a
     confidence in (0, 1];
   - every overturnable (soft absolute) premise of a result-changing
     rewrite must appear in the report's guard set, and such a plan must
     carry a backup plan (§4.1 flag-and-revert);
   - the delta's shape must match the rule that claims it;
   - twin predicates must be marked estimation-only and must not appear
     among the executable predicates of the physical plan (or backup). *)

open Rel

let pass = "cert"

(* What a premise name resolves to, from the checker's point of view. *)
type basis =
  | Hard  (* declared (hard or informational) IC: needs no guard *)
  | Soft_absolute  (* overturnable ASC: must be guarded *)
  | Soft_statistical  (* SSC: estimation-only basis *)
  | Invalid of string  (* reason it is no valid basis *)

let basis_of sdb name =
  if String.length name > 4 && String.sub name 0 4 = "idx:" then
    (* index-backed rewrite premise: sound while the named index exists
       and is readable — the same condition guard_ok re-checks at open *)
    let index = String.sub name 4 (String.length name - 4) in
    match Database.find_index_by_name (Core.Softdb.db sdb) index with
    | Some idx when Index.is_readable idx -> Soft_absolute
    | Some idx ->
        Invalid
          (Printf.sprintf "names index %s in non-readable state %s" index
             (Index.state_to_string (Index.state idx)))
    | None -> Invalid "names no index in the catalog"
  else
  match Database.find_constraint (Core.Softdb.db sdb) name with
  | Some _ -> Hard
  | None -> (
      match Core.Sc_catalog.find (Core.Softdb.catalog sdb) name with
      | None -> Invalid "names no declared IC or catalog SC"
      | Some sc ->
          (* guard_ok admits usable SCs and exception-backed ASCs whose
             exception table still exists — the same validity the guarded
             executor re-checks at open *)
          if not (Core.Softdb.guard_ok sdb name) then
            Invalid "is not usable (overturned, on probation, or dropped)"
          else if Core.Soft_constraint.is_absolute sc then Soft_absolute
          else Soft_statistical)

(* Which delta shapes a rule may legitimately claim. *)
let shape_ok rule (delta : Opt.Rewrite.delta) =
  match (rule, delta) with
  | "join_elimination", Opt.Rewrite.Source_removed _
  | ( ("predicate_introduction" | "equality_transitivity"),
      Opt.Rewrite.Pred_added _ )
  | "hole_trimming", (Opt.Rewrite.Pred_added _ | Opt.Rewrite.Block_falsified)
  | "exception_union", Opt.Rewrite.Union_split _
  | ( "fd_simplification",
      (Opt.Rewrite.Order_key_dropped _ | Opt.Rewrite.Group_key_dropped _) )
  | "unsatisfiable", Opt.Rewrite.Block_falsified
  | "unionall_pruning", Opt.Rewrite.Branch_pruned
  | "partition_pruning", Opt.Rewrite.Partition_pruned _
  | "index_only", Opt.Rewrite.Index_access _
  | "twinning", Opt.Rewrite.Pred_twinned _ ->
      true
  | _ -> false

(* Rules whose soundness argument always rests on at least one named
   constraint.  (FD simplification can be carried by declared keys alone,
   and an unsatisfiability proof by the query's own predicates, so those
   may legitimately name none.) *)
let premises_required = function
  | "join_elimination" | "predicate_introduction" | "exception_union"
  | "index_only" | "twinning" ->
      true
  | _ -> false

let check_certificate sdb ~guards ~has_backup (c : Opt.Explain.certificate) =
  let subject = c.Opt.Explain.cert_rule in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if not (shape_ok c.Opt.Explain.cert_rule c.Opt.Explain.cert_delta) then
    add
      (Diag.error ~pass ~subject "delta {%s} does not match the rule"
         (Fmt.str "%a" Opt.Rewrite.pp_delta c.Opt.Explain.cert_delta));
  if
    c.Opt.Explain.cert_result_changing
    <> Opt.Rewrite.delta_changes_results c.Opt.Explain.cert_delta
  then
    add
      (Diag.error ~pass ~subject
         "result-changing flag disagrees with the delta");
  if
    premises_required c.Opt.Explain.cert_rule
    && c.Opt.Explain.cert_premises = []
  then
    add
      (Diag.error ~pass ~subject
         "names no premise but the rule requires a constraint basis");
  List.iter
    (fun name ->
      match basis_of sdb name with
      | Invalid reason ->
          add (Diag.error ~pass ~subject "premise %s %s" name reason)
      | Hard -> ()
      | Soft_absolute ->
          if c.Opt.Explain.cert_result_changing then begin
            if not (List.mem name guards) then
              add
                (Diag.error ~pass ~subject
                   "result-changing rewrite premised on overturnable ASC %s \
                    is not in the plan's guard set"
                   name);
            if not has_backup then
              add
                (Diag.error ~pass ~subject
                   "premised on overturnable ASC %s but the plan carries no \
                    backup"
                   name)
          end
      | Soft_statistical ->
          if c.Opt.Explain.cert_result_changing then
            add
              (Diag.error ~pass ~subject
                 "result-changing rewrite rests on statistical SC %s \
                  (estimation-only basis)"
                 name))
    c.Opt.Explain.cert_premises;
  (match c.Opt.Explain.cert_delta with
  | Opt.Rewrite.Pred_twinned { confidence; _ } ->
      if not (confidence > 0.0 && confidence <= 1.0) then
        add
          (Diag.error ~pass ~subject "twin confidence %.3f outside (0, 1]"
             confidence)
  | _ -> ());
  List.rev !diags

(* ---- twin isolation -------------------------------------------------------- *)

let rec twin_items acc (l : Opt.Logical.t) =
  match l with
  | Opt.Logical.Block b ->
      List.fold_left
        (fun acc (p : Opt.Logical.pred_item) ->
          match p.Opt.Logical.origin with
          | Opt.Logical.Twin _ -> p :: acc
          | _ -> acc)
        acc b.Opt.Logical.preds
  | Opt.Logical.Union ts -> List.fold_left twin_items acc ts

(* Every predicate the physical plan will actually evaluate. *)
let rec plan_preds acc (p : Exec.Plan.t) =
  match p with
  | Exec.Plan.Seq_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Index_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Index_only_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Filter { input; pred } -> plan_preds (pred :: acc) input
  | Exec.Plan.Project { input; _ }
  | Exec.Plan.Sort { input; _ }
  | Exec.Plan.Group { input; _ }
  | Exec.Plan.Limit { input; _ } ->
      plan_preds acc input
  | Exec.Plan.Distinct input -> plan_preds acc input
  | Exec.Plan.Nested_loop_join { left; right; pred } ->
      plan_preds (plan_preds (pred :: acc) left) right
  | Exec.Plan.Hash_join { left; right; residual; _ }
  | Exec.Plan.Merge_join { left; right; residual; _ } ->
      plan_preds (plan_preds (residual :: acc) left) right
  | Exec.Plan.Union_all inputs -> List.fold_left plan_preds acc inputs
  | Exec.Plan.Partition_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Scatter_gather { children; _ } ->
      List.fold_left (fun acc (_, p) -> plan_preds acc p) acc children

let twin_diags (report : Opt.Explain.report) =
  let twins = twin_items [] report.Opt.Explain.rewritten in
  let flag_diags =
    List.filter_map
      (fun (p : Opt.Logical.pred_item) ->
        if p.Opt.Logical.estimation_only then None
        else
          Some
            (Diag.error ~pass ~subject:"twin"
               "twin predicate %s is not marked estimation-only"
               (Expr.to_string_pred p.Opt.Logical.pred)))
      twins
  in
  let exec_conjuncts =
    let preds =
      plan_preds [] report.Opt.Explain.plan
      @
      match report.Opt.Explain.backup_plan with
      | Some b -> plan_preds [] b
      | None -> []
    in
    List.concat_map Expr.conjuncts preds
  in
  let leak_diags =
    List.filter_map
      (fun (p : Opt.Logical.pred_item) ->
        let leaked =
          List.exists
            (fun c -> List.mem c exec_conjuncts)
            (Expr.conjuncts p.Opt.Logical.pred)
        in
        if leaked then
          Some
            (Diag.error ~pass ~subject:"twin"
               "twin predicate %s appears among the plan's executable \
                predicates"
               (Expr.to_string_pred p.Opt.Logical.pred))
        else None)
      twins
  in
  flag_diags @ leak_diags

(* ---- partition-prune re-derivation ---------------------------------------- *)

(* Re-derive every [Partition_pruned] certificate without trusting the
   rewriter: the pruned segment's constraint — its routing bounds,
   tightened by whichever premises are partition-domain SCs of that
   segment — must contradict the block's executable predicates, and the
   contradiction must be anchored by a query predicate on the same column
   (a constraint interval alone proves nothing about rows the query has
   not already confined to non-NULL; CHECK semantics pass on UNKNOWN).
   Hash segments carry no interval constraint, so a hash prune is only
   sound when an equality on the partition column routes elsewhere. *)

let norm = String.lowercase_ascii

let rec strip_null_arms = function
  | Expr.Or (p, Expr.Is_null _) -> strip_null_arms p
  | p -> p

let requalify alias p =
  Expr.map_cols_pred
    (fun r ->
      match r.Expr.rel with
      | None -> { r with Expr.rel = Some alias }
      | Some _ -> r)
    p

let partition_diags sdb (report : Opt.Explain.report) =
  let db = Core.Softdb.db sdb in
  let catalog = Core.Softdb.catalog sdb in
  let rec blocks acc = function
    | Opt.Logical.Block b -> b :: acc
    | Opt.Logical.Union ts -> List.fold_left blocks acc ts
  in
  let blks = blocks [] report.Opt.Explain.rewritten in
  let check_prune (c : Opt.Explain.certificate) ~table ~alias ~partition =
    let subject = c.Opt.Explain.cert_rule in
    let fail fmt = Diag.error ~pass ~subject fmt in
    match Database.partitioning db table with
    | None -> [ fail "%s is not partitioned but a prune names it" table ]
    | Some part when partition < 0 || partition >= Partition.count part ->
        [ fail "pruned partition %d out of range for %s" partition table ]
    | Some part -> (
        let block =
          List.find_opt
            (fun (b : Opt.Logical.block) ->
              List.exists
                (fun (s : Opt.Logical.source) ->
                  norm s.Opt.Logical.alias = norm alias
                  && norm s.Opt.Logical.table = norm table)
                b.Opt.Logical.from)
            blks
        in
        match block with
        | None ->
            [ fail "pruned source %s (%s) not found in the rewritten query"
                alias table ]
        | Some block ->
            let key_of (r : Expr.col_ref) =
              match Opt.Logical.sources_of_col db block r with
              | [ s ] ->
                  Some (norm s.Opt.Logical.alias ^ "." ^ norm r.Expr.col)
              | _ -> None
            in
            let query_preds =
              List.map
                (fun (p : Opt.Logical.pred_item) -> p.Opt.Logical.pred)
                (Opt.Logical.executable_preds block)
            in
            (* premises that are partition-domain SCs of this segment
               tighten the constraint (their validity was already checked
               by [check_certificate]) *)
            let sc_preds =
              List.filter_map
                (fun name ->
                  match Core.Sc_catalog.find catalog name with
                  | Some
                      ({
                         Core.Soft_constraint.statement =
                           Core.Soft_constraint.Part_stmt { partition = i; pred };
                         _;
                       } as sc)
                    when i = partition
                         && norm sc.Core.Soft_constraint.table = norm table ->
                      Some pred
                  | _ -> None)
                c.Opt.Explain.cert_premises
            in
            let part_preds =
              List.map (requalify alias)
                (strip_null_arms (Partition.constraint_pred part partition)
                :: sc_preds)
            in
            let interval_contradiction =
              let q_entries, _ =
                Opt.Interval.summarize ~key_of query_preds
              in
              let all_entries, _ =
                Opt.Interval.summarize ~key_of (query_preds @ part_preds)
              in
              List.exists
                (fun (key, (_, iv)) ->
                  Opt.Interval.is_empty iv && List.mem_assoc key q_entries)
                all_entries
            in
            let hash_exclusion =
              match Partition.spec part with
              | Partition.Range _ -> false
              | Partition.Hash _ -> (
                  let col = Partition.column part in
                  match key_of { Expr.rel = Some alias; col } with
                  | None -> false
                  | Some key ->
                      Opt.Interval.const_bindings query_preds
                      |> List.exists (fun (r, v) ->
                             key_of r = Some key
                             && Partition.route_value part v <> partition))
            in
            if interval_contradiction || hash_exclusion then []
            else
              [
                fail
                  "partition %d of %s: constraint does not contradict the \
                   query predicates"
                  partition table;
              ])
  in
  List.concat_map
    (fun (c : Opt.Explain.certificate) ->
      match c.Opt.Explain.cert_delta with
      | Opt.Rewrite.Partition_pruned { table; alias; partition } ->
          check_prune c ~table ~alias ~partition
      | _ -> [])
    (Opt.Explain.certificates report)

let check_report sdb (report : Opt.Explain.report) =
  let certs = Opt.Explain.certificates report in
  let guards = report.Opt.Explain.guards in
  let has_backup = report.Opt.Explain.backup_plan <> None in
  let backup_diag =
    (* §4.1: any plan that rests on overturnable SCs (guards <> []) must
       carry the conservative backup the executor reverts to.  A plan
       rewritten purely from hard ICs legitimately has neither. *)
    if guards <> [] && not has_backup then
      [
        Diag.error ~pass ~subject:"plan"
          "plan is guarded by %s but no backup plan was compiled"
          (String.concat ", " guards);
      ]
    else []
  in
  backup_diag
  @ List.concat_map (check_certificate sdb ~guards ~has_backup) certs
  @ partition_diags sdb report
  @ twin_diags report

let check_query ?flags sdb sql =
  let q = Sqlfe.Parser.parse_query_string sql in
  let report = Core.Softdb.optimize ?flags sdb q in
  (report, check_report sdb report)
