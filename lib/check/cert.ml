(* The independent certificate checker (tentpole pass 1).

   The rewriter emits, for every fired transformation, a certificate
   naming its SC premises and the structural plan delta
   ({!Opt.Rewrite.applied}).  This module re-derives soundness from the
   live catalog without trusting the rewriter:

   - every premise must resolve to a declared IC or a currently-valid
     catalog SC;
   - a result-changing delta may not rest on a statistical SC — only
     twins (estimation-only) may, and their payload must carry a
     confidence in (0, 1];
   - every overturnable (soft absolute) premise of a result-changing
     rewrite must appear in the report's guard set, and such a plan must
     carry a backup plan (§4.1 flag-and-revert);
   - the delta's shape must match the rule that claims it;
   - twin predicates must be marked estimation-only and must not appear
     among the executable predicates of the physical plan (or backup). *)

open Rel

let pass = "cert"

(* What a premise name resolves to, from the checker's point of view. *)
type basis =
  | Hard  (* declared (hard or informational) IC: needs no guard *)
  | Soft_absolute  (* overturnable ASC: must be guarded *)
  | Soft_statistical  (* SSC: estimation-only basis *)
  | Invalid of string  (* reason it is no valid basis *)

let basis_of sdb name =
  match Database.find_constraint (Core.Softdb.db sdb) name with
  | Some _ -> Hard
  | None -> (
      match Core.Sc_catalog.find (Core.Softdb.catalog sdb) name with
      | None -> Invalid "names no declared IC or catalog SC"
      | Some sc ->
          (* guard_ok admits usable SCs and exception-backed ASCs whose
             exception table still exists — the same validity the guarded
             executor re-checks at open *)
          if not (Core.Softdb.guard_ok sdb name) then
            Invalid "is not usable (overturned, on probation, or dropped)"
          else if Core.Soft_constraint.is_absolute sc then Soft_absolute
          else Soft_statistical)

(* Which delta shapes a rule may legitimately claim. *)
let shape_ok rule (delta : Opt.Rewrite.delta) =
  match (rule, delta) with
  | "join_elimination", Opt.Rewrite.Source_removed _
  | ( ("predicate_introduction" | "equality_transitivity"),
      Opt.Rewrite.Pred_added _ )
  | "hole_trimming", (Opt.Rewrite.Pred_added _ | Opt.Rewrite.Block_falsified)
  | "exception_union", Opt.Rewrite.Union_split _
  | ( "fd_simplification",
      (Opt.Rewrite.Order_key_dropped _ | Opt.Rewrite.Group_key_dropped _) )
  | "unsatisfiable", Opt.Rewrite.Block_falsified
  | "unionall_pruning", Opt.Rewrite.Branch_pruned
  | "twinning", Opt.Rewrite.Pred_twinned _ ->
      true
  | _ -> false

(* Rules whose soundness argument always rests on at least one named
   constraint.  (FD simplification can be carried by declared keys alone,
   and an unsatisfiability proof by the query's own predicates, so those
   may legitimately name none.) *)
let premises_required = function
  | "join_elimination" | "predicate_introduction" | "exception_union"
  | "twinning" ->
      true
  | _ -> false

let check_certificate sdb ~guards ~has_backup (c : Opt.Explain.certificate) =
  let subject = c.Opt.Explain.cert_rule in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if not (shape_ok c.Opt.Explain.cert_rule c.Opt.Explain.cert_delta) then
    add
      (Diag.error ~pass ~subject "delta {%s} does not match the rule"
         (Fmt.str "%a" Opt.Rewrite.pp_delta c.Opt.Explain.cert_delta));
  if
    c.Opt.Explain.cert_result_changing
    <> Opt.Rewrite.delta_changes_results c.Opt.Explain.cert_delta
  then
    add
      (Diag.error ~pass ~subject
         "result-changing flag disagrees with the delta");
  if
    premises_required c.Opt.Explain.cert_rule
    && c.Opt.Explain.cert_premises = []
  then
    add
      (Diag.error ~pass ~subject
         "names no premise but the rule requires a constraint basis");
  List.iter
    (fun name ->
      match basis_of sdb name with
      | Invalid reason ->
          add (Diag.error ~pass ~subject "premise %s %s" name reason)
      | Hard -> ()
      | Soft_absolute ->
          if c.Opt.Explain.cert_result_changing then begin
            if not (List.mem name guards) then
              add
                (Diag.error ~pass ~subject
                   "result-changing rewrite premised on overturnable ASC %s \
                    is not in the plan's guard set"
                   name);
            if not has_backup then
              add
                (Diag.error ~pass ~subject
                   "premised on overturnable ASC %s but the plan carries no \
                    backup"
                   name)
          end
      | Soft_statistical ->
          if c.Opt.Explain.cert_result_changing then
            add
              (Diag.error ~pass ~subject
                 "result-changing rewrite rests on statistical SC %s \
                  (estimation-only basis)"
                 name))
    c.Opt.Explain.cert_premises;
  (match c.Opt.Explain.cert_delta with
  | Opt.Rewrite.Pred_twinned { confidence; _ } ->
      if not (confidence > 0.0 && confidence <= 1.0) then
        add
          (Diag.error ~pass ~subject "twin confidence %.3f outside (0, 1]"
             confidence)
  | _ -> ());
  List.rev !diags

(* ---- twin isolation -------------------------------------------------------- *)

let rec twin_items acc (l : Opt.Logical.t) =
  match l with
  | Opt.Logical.Block b ->
      List.fold_left
        (fun acc (p : Opt.Logical.pred_item) ->
          match p.Opt.Logical.origin with
          | Opt.Logical.Twin _ -> p :: acc
          | _ -> acc)
        acc b.Opt.Logical.preds
  | Opt.Logical.Union ts -> List.fold_left twin_items acc ts

(* Every predicate the physical plan will actually evaluate. *)
let rec plan_preds acc (p : Exec.Plan.t) =
  match p with
  | Exec.Plan.Seq_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Index_scan { filter; _ } -> filter :: acc
  | Exec.Plan.Filter { input; pred } -> plan_preds (pred :: acc) input
  | Exec.Plan.Project { input; _ }
  | Exec.Plan.Sort { input; _ }
  | Exec.Plan.Group { input; _ }
  | Exec.Plan.Limit { input; _ } ->
      plan_preds acc input
  | Exec.Plan.Distinct input -> plan_preds acc input
  | Exec.Plan.Nested_loop_join { left; right; pred } ->
      plan_preds (plan_preds (pred :: acc) left) right
  | Exec.Plan.Hash_join { left; right; residual; _ }
  | Exec.Plan.Merge_join { left; right; residual; _ } ->
      plan_preds (plan_preds (residual :: acc) left) right
  | Exec.Plan.Union_all inputs -> List.fold_left plan_preds acc inputs

let twin_diags (report : Opt.Explain.report) =
  let twins = twin_items [] report.Opt.Explain.rewritten in
  let flag_diags =
    List.filter_map
      (fun (p : Opt.Logical.pred_item) ->
        if p.Opt.Logical.estimation_only then None
        else
          Some
            (Diag.error ~pass ~subject:"twin"
               "twin predicate %s is not marked estimation-only"
               (Expr.to_string_pred p.Opt.Logical.pred)))
      twins
  in
  let exec_conjuncts =
    let preds =
      plan_preds [] report.Opt.Explain.plan
      @
      match report.Opt.Explain.backup_plan with
      | Some b -> plan_preds [] b
      | None -> []
    in
    List.concat_map Expr.conjuncts preds
  in
  let leak_diags =
    List.filter_map
      (fun (p : Opt.Logical.pred_item) ->
        let leaked =
          List.exists
            (fun c -> List.mem c exec_conjuncts)
            (Expr.conjuncts p.Opt.Logical.pred)
        in
        if leaked then
          Some
            (Diag.error ~pass ~subject:"twin"
               "twin predicate %s appears among the plan's executable \
                predicates"
               (Expr.to_string_pred p.Opt.Logical.pred))
        else None)
      twins
  in
  flag_diags @ leak_diags

let check_report sdb (report : Opt.Explain.report) =
  let certs = Opt.Explain.certificates report in
  let guards = report.Opt.Explain.guards in
  let has_backup = report.Opt.Explain.backup_plan <> None in
  let backup_diag =
    (* §4.1: any plan that rests on overturnable SCs (guards <> []) must
       carry the conservative backup the executor reverts to.  A plan
       rewritten purely from hard ICs legitimately has neither. *)
    if guards <> [] && not has_backup then
      [
        Diag.error ~pass ~subject:"plan"
          "plan is guarded by %s but no backup plan was compiled"
          (String.concat ", " guards);
      ]
    else []
  in
  backup_diag
  @ List.concat_map (check_certificate sdb ~guards ~has_backup) certs
  @ twin_diags report

let check_query ?flags sdb sql =
  let q = Sqlfe.Parser.parse_query_string sql in
  let report = Core.Softdb.optimize ?flags sdb q in
  (report, check_report sdb report)
