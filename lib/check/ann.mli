(** The concurrency annotation language shared by {!Lock_lint},
    {!Guard_lint}, and {!Lockdep_lint}: [@lock-order] declarations,
    [@acquires]/[@waits] site annotations with [while] held-clauses,
    [@guarded-by] state annotations, and [@lock-ignore]. *)

val contains : string -> string -> bool
val after : string -> string -> string option

val words : string -> string list
(** Whitespace-split words of an annotation tail, stopping at the
    comment terminator. *)

val lines_of : string -> string list

type decl = {
  d_name : string;
  d_rank : int;
  d_reentrant : bool;
  d_waived : bool;
      (** [lockdep-waive]: exempt from the dynamic stale-rank check *)
  d_file : string;
  d_line : int;  (** 1-based *)
}

val parse_decl : string -> (string * int * bool * bool) option
(** [(name, rank, reentrant, waived)] of an [@lock-order] line. *)

val collect_decls : (string * string) list -> decl list
(** Every declaration across [(file, contents)] sources, in order. *)

val decl_table : decl list -> (string, decl) Hashtbl.t
(** First declaration wins; conflict reporting is {!Lock_lint}'s job. *)

type ann =
  | Acquires of string * string list  (** lock, held set *)
  | Waits of string * string list  (** lock, held set *)
  | Guarded_by of string  (** ["none"] = explicitly unguarded *)
  | Ignore

val parse_ann : string -> ann option

val referenced_locks : (string * string) list -> (string, unit) Hashtbl.t
(** Every lock name referenced by any site or state annotation —
    the liveness side of dead-rank detection. *)

val read_file : string -> string
val read_sources : string list -> (string * string) list
