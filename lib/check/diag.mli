(** Diagnostics shared by every static-analysis pass: a severity, the
    pass that produced it, the subject (file, constraint, certificate),
    and a message.  The CLI exit code is derived from {!has_errors}. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;
  subject : string;
  message : string;
}

val error :
  pass:string -> subject:string -> ('a, unit, string, t) format4 -> 'a

val warning :
  pass:string -> subject:string -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool
val has_errors : t list -> bool
val errors : t list -> t list
val pp : Format.formatter -> t -> unit

val render : t list -> string
(** One line per diagnostic plus a PASS/FAIL summary — the check report
    uploaded as a CI artifact. *)
