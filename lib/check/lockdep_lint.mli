(** Cross-validation of an {!Obs.Lockdep} edge-graph dump against the
    static [@lock-order] rank table: observed edges must go strictly
    uphill in rank and name declared locks, runtime witness violations
    are errors verbatim, and every declared rank must have been
    exercised by the run unless it carries [lockdep-waive]. *)

val lint_graph :
  decls:(string, Ann.decl) Hashtbl.t -> Obs.Lockdep.graph -> Diag.t list
(** Validate a parsed graph against a declaration table. *)

val lint_dump : sources:(string * string) list -> string -> Diag.t list
(** Parse a dump and validate it against the declarations collected
    from [(filename, contents)] sources. *)

val lint_file : sources:(string * string) list -> string -> Diag.t list
(** Read a dump file ({!Obs.Lockdep.dump} output) and validate it. *)
