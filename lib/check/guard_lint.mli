(** Guarded-by analysis: every piece of shared mutable state in the
    concurrent subsystems — [mutable] record fields, fields of mutable
    container types ([Hashtbl.t]/[Queue.t]/[Atomic.t]), module-level
    refs — must carry a [@guarded-by <lock>] annotation naming a lock
    from the [@lock-order] table (or [@guarded-by none: <why>] to be
    explicitly unguarded).  Also flags guards no annotated site can ever
    hold, and dead [@lock-order] ranks nothing references.  Grammar in
    {!Ann}; the dynamic counterpart is {!Obs.Lockdep} + {!Lockdep_lint}. *)

val lint_sources : (string * string) list -> Diag.t list
(** [lint_sources [(filename, contents); ...]] lints in-memory sources;
    declarations and holdable-lock sets aggregate across all of them. *)

val lint_files : string list -> Diag.t list
(** Read the given files and lint them. *)
