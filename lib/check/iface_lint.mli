(** Interface-coverage lint: flags any [lib/**/*.ml] without a matching
    [.mli]. *)

val ml_files : root:string -> string list
(** All [.ml] files under [root]/lib, sorted. *)

val lint : root:string -> Diag.t list
