(* Diagnostics shared by every static-analysis pass: a severity, the
   pass that produced it, the subject (file, constraint, certificate),
   and a message.  The CLI exit code is derived from [has_errors]. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;
  subject : string;
  message : string;
}

let make severity ~pass ~subject fmt =
  Printf.ksprintf (fun message -> { severity; pass; subject; message }) fmt

let error ~pass ~subject fmt = make Error ~pass ~subject fmt
let warning ~pass ~subject fmt = make Warning ~pass ~subject fmt
let is_error d = d.severity = Error
let has_errors diags = List.exists is_error diags
let errors diags = List.filter is_error diags

let pp ppf d =
  Fmt.pf ppf "%s [%s] %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.pass d.subject d.message

(* The check report: one line per diagnostic plus a pass/fail summary —
   written to the CLI report file and uploaded as a CI artifact. *)
let render diags =
  let buf = Buffer.create 256 in
  List.iter (fun d -> Buffer.add_string buf (Fmt.str "%a\n" pp d)) diags;
  let errs = List.length (errors diags) in
  let warns = List.length diags - errs in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d error(s), %d warning(s)\n"
       (if errs = 0 then "PASS" else "FAIL")
       errs warns);
  Buffer.contents buf
