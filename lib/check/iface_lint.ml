(* Interface-coverage lint: every lib/**/*.ml must publish a matching
   .mli.  Interfaces are the abstraction boundary the rest of the tree
   compiles against; a missing one silently exports every helper. *)

let pass = "iface"

let rec walk dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".ml" then path :: acc
          else acc)
        acc entries

let ml_files ~root =
  let lib = Filename.concat root "lib" in
  if Sys.file_exists lib && Sys.is_directory lib then
    List.sort String.compare (walk lib [])
  else []

let lint ~root =
  List.filter_map
    (fun ml ->
      let mli = ml ^ "i" in
      if Sys.file_exists mli then None
      else
        Some
          (Diag.error ~pass ~subject:ml
             "implementation has no matching interface (%s)"
             (Filename.basename mli)))
    (ml_files ~root)
