(* The concurrency annotation language, shared by every lint that reads
   it (Lock_lint, Guard_lint, Lockdep_lint).  One parser, one grammar —
   the annotations are a contract between humans and three analyses, and
   a second parser would let the dialects drift apart.

   Declarations (the canonical rank table lives in lib/srv/session.ml):

     (* @lock-order <name> rank=<int> [reentrant] [lockdep-waive] *)

   [reentrant] allows same-name re-acquisition (ownership-counted locks
   such as db.rwlock); [lockdep-waive] exempts the lock from the
   dynamic stale-rank check — for locks the racecheck traffic cannot
   exercise (pipe-only transports, the witness's own mutex).

   Site annotations, on the acquiring line or at most three lines above:

     (* @acquires <name> [while <held> ...] *)   taking a lock
     (* @waits <name> [while <held> ...] *)      Condition.wait on it
     (* @lock-ignore *)                          suppress (test scaffolding)

   State annotations, on the declaring line, at most three lines above
   it, or above the record's opening brace (covering every field of the
   record):

     (* @guarded-by <lock> *)                    state guarded by <lock>
     (* @guarded-by none: <why> *)               explicitly unguarded *)

(* ---- tiny string utilities ------------------------------------------------ *)

let contains_at s i sub =
  i + String.length sub <= String.length s
  && String.sub s i (String.length sub) = sub

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if contains_at s i sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = index_of s sub <> None

let after s marker =
  match index_of s marker with
  | None -> None
  | Some i ->
      let j = i + String.length marker in
      Some (String.sub s j (String.length s - j))

(* whitespace-split words of an annotation tail, stopping at the comment
   terminator *)
let words s =
  String.map (fun c -> if c = '\t' then ' ' else c) s
  |> String.split_on_char ' '
  |> List.filter_map (fun w ->
         let w =
           match index_of w "*)" with
           | Some i -> String.sub w 0 i
           | None -> w
         in
         if w = "" then None else Some w)
  |> List.fold_left
       (fun (acc, stop) w ->
         if stop || w = "*)" then (acc, true) else (w :: acc, false))
       ([], false)
  |> fst |> List.rev

let lines_of contents = String.split_on_char '\n' contents

(* ---- declarations --------------------------------------------------------- *)

type decl = {
  d_name : string;
  d_rank : int;
  d_reentrant : bool;
  d_waived : bool; (* lockdep-waive: exempt from the stale-rank check *)
  d_file : string;
  d_line : int; (* 1-based *)
}

let parse_decl line =
  match after line "@lock-order" with
  | None -> None
  | Some tail -> (
      match words tail with
      | name :: rest ->
          let rank =
            List.find_map
              (fun w ->
                match after w "rank=" with
                | Some v -> int_of_string_opt v
                | None -> None)
              rest
          in
          Option.map
            (fun rank ->
              ( name,
                rank,
                List.mem "reentrant" rest,
                List.mem "lockdep-waive" rest ))
            rank
      | [] -> None)

let collect_decls sources =
  List.concat_map
    (fun (file, contents) ->
      List.mapi (fun i line -> (i, line)) (lines_of contents)
      |> List.filter_map (fun (i, line) ->
             Option.map
               (fun (d_name, d_rank, d_reentrant, d_waived) ->
                 { d_name; d_rank; d_reentrant; d_waived; d_file = file;
                   d_line = i + 1 })
               (parse_decl line)))
    sources

(* First declaration wins; conflict reporting is Lock_lint's job. *)
let decl_table decls =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if not (Hashtbl.mem tbl d.d_name) then Hashtbl.replace tbl d.d_name d)
    decls;
  tbl

(* ---- site and state annotations ------------------------------------------- *)

type ann =
  | Acquires of string * string list
  | Waits of string * string list
  | Guarded_by of string (* "none" = explicitly unguarded *)
  | Ignore

let held_clause rest =
  let rec go = function
    | "while" :: hs -> hs
    | _ :: tl -> go tl
    | [] -> []
  in
  go rest

let parse_ann line =
  if contains line "@lock-ignore" then Some Ignore
  else
    match after line "@acquires" with
    | Some tail -> (
        match words tail with
        | name :: rest -> Some (Acquires (name, held_clause rest))
        | [] -> None)
    | None -> (
        match after line "@waits" with
        | Some tail -> (
            match words tail with
            | name :: rest -> Some (Waits (name, held_clause rest))
            | [] -> None)
        | None -> (
            match after line "@guarded-by" with
            | Some tail -> (
                match words tail with
                | name :: _ ->
                    (* strip the "none:" reason separator *)
                    let name =
                      match index_of name ":" with
                      | Some i -> String.sub name 0 i
                      | None -> name
                    in
                    Some (Guarded_by name)
                | [] -> None)
            | None -> None))

(* Every lock name an annotation set references (acquired, waited-on,
   held, guarding) — the liveness side of dead-rank detection. *)
let referenced_locks sources =
  let refs = Hashtbl.create 32 in
  List.iter
    (fun (_, contents) ->
      List.iter
        (fun line ->
          match parse_ann line with
          | Some (Acquires (name, held)) | Some (Waits (name, held)) ->
              List.iter (fun l -> Hashtbl.replace refs l ()) (name :: held)
          | Some (Guarded_by name) when name <> "none" ->
              Hashtbl.replace refs name ()
          | Some (Guarded_by _) | Some Ignore | None -> ())
        (lines_of contents))
    sources;
  refs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_sources paths = List.map (fun p -> (p, read_file p)) paths
