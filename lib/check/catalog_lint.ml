(* The catalog linter (tentpole pass 2): structural health checks over
   the soft-constraint catalog itself.

   - contradictory SCs: check statements whose combined per-column
     interval is empty, and absolute difference bands on the same column
     pair with disjoint [d_min, d_max] ranges — the data cannot satisfy
     both, so at least one is wrong (cf. soft-FD repair, Livshits et al.);
   - duplicate / subsumed soft FDs: a same-table FD with the same rhs and
     a (strictly) smaller lhs makes the wider one redundant;
   - SSCs whose decayed confidence is at or below the planner's use
     threshold: dead weight the optimizer already ignores;
   - exception-backed ASCs whose exception table has grown past the
     rewrite-profitability bound: the union plan scans the exceptions on
     every query, so past ~10% of the base table the rewrite stops
     paying. *)

open Rel

let pass = "catalog"

(* Exception table size beyond this fraction of the base table makes the
   exception-union rewrite unprofitable. *)
let exception_growth_bound = 0.1

let norm = String.lowercase_ascii

let contradiction_diags sdb =
  let db = Core.Softdb.db sdb and cat = Core.Softdb.catalog sdb in
  let soft_checks =
    List.filter_map
      (fun (sc : Core.Soft_constraint.t) ->
        if Core.Soft_constraint.is_absolute sc then
          Option.map
            (fun p ->
              (sc.Core.Soft_constraint.table, sc.Core.Soft_constraint.name, p))
            (Core.Soft_constraint.check_pred sc)
        else None)
      (Core.Sc_catalog.usable cat)
  in
  let declared_checks =
    List.filter_map
      (fun (ic : Icdef.t) ->
        match ic.Icdef.body with
        | Icdef.Check p -> Some (ic.Icdef.table, ic.Icdef.name, p)
        | _ -> None)
      (Database.constraints db)
  in
  let tables =
    List.sort_uniq String.compare
      (List.map (fun (t, _, _) -> norm t) soft_checks)
  in
  List.concat_map
    (fun table ->
      let on_table l =
        List.filter (fun (t, _, _) -> norm t = table) l
      in
      let soft = on_table soft_checks and declared = on_table declared_checks in
      let all = soft @ declared in
      if List.length all < 2 then []
      else
        let entries, _ =
          Opt.Interval.summarize
            ~key_of:(fun (r : Expr.col_ref) -> Some (norm r.Expr.col))
            (List.map (fun (_, _, p) -> p) all)
        in
        let contradicted =
          List.filter (fun (_, (_, iv)) -> Opt.Interval.is_empty iv) entries
        in
        List.map
          (fun (col, _) ->
            Diag.error ~pass ~subject:table
              "contradictory constraints on column %s (combined interval is \
               empty): %s"
              col
              (String.concat ", " (List.map (fun (_, n, _) -> n) all)))
          contradicted)
    tables

let band_disjoint_diags sdb =
  let cat = Core.Softdb.catalog sdb in
  let bands =
    List.filter_map
      (fun (sc : Core.Soft_constraint.t) ->
        if not (Core.Soft_constraint.is_absolute sc) then None
        else
          match sc.Core.Soft_constraint.statement with
          | Core.Soft_constraint.Diff_stmt (d, band) ->
              Some (sc.Core.Soft_constraint.name, d, band)
          | _ -> None)
      (Core.Sc_catalog.usable cat)
  in
  let rec pairs = function
    | [] -> []
    | x :: tl -> List.map (fun y -> (x, y)) tl @ pairs tl
  in
  List.filter_map
    (fun ((n1, d1, b1), (n2, d2, b2)) ->
      let same_cols =
        norm d1.Mining.Diff_band.table = norm d2.Mining.Diff_band.table
        && norm d1.Mining.Diff_band.col_hi = norm d2.Mining.Diff_band.col_hi
        && norm d1.Mining.Diff_band.col_lo = norm d2.Mining.Diff_band.col_lo
      in
      let disjoint =
        b1.Mining.Diff_band.d_max < b2.Mining.Diff_band.d_min
        || b2.Mining.Diff_band.d_max < b1.Mining.Diff_band.d_min
      in
      if same_cols && disjoint then
        Some
          (Diag.error ~pass ~subject:(norm d1.Mining.Diff_band.table)
             "absolute difference bands %s and %s on %s - %s are disjoint: \
              no row can satisfy both"
             n1 n2 d1.Mining.Diff_band.col_hi d1.Mining.Diff_band.col_lo)
      else None)
    (pairs bands)

let fd_diags sdb =
  let cat = Core.Softdb.catalog sdb in
  let fds =
    List.filter_map
      (fun (sc : Core.Soft_constraint.t) ->
        match sc.Core.Soft_constraint.statement with
        | Core.Soft_constraint.Fd_stmt fd ->
            Some (sc.Core.Soft_constraint.name, fd)
        | _ -> None)
      (Core.Sc_catalog.usable cat)
  in
  let key (fd : Mining.Fd_mine.fd) =
    ( norm fd.Mining.Fd_mine.table,
      List.sort String.compare (List.map norm fd.Mining.Fd_mine.lhs),
      norm fd.Mining.Fd_mine.rhs )
  in
  let rec pairs = function
    | [] -> []
    | x :: tl -> List.map (fun y -> (x, y)) tl @ pairs tl
  in
  List.filter_map
    (fun ((n1, fd1), (n2, fd2)) ->
      let t1, l1, r1 = key fd1 and t2, l2, r2 = key fd2 in
      if t1 <> t2 || r1 <> r2 then None
      else if l1 = l2 then
        Some
          (Diag.warning ~pass ~subject:t1 "FDs %s and %s are duplicates" n1 n2)
      else
        let subset a b = List.for_all (fun x -> List.mem x b) a in
        if subset l1 l2 then
          Some
            (Diag.warning ~pass ~subject:t1
               "FD %s is subsumed by %s (smaller determinant, same \
                dependent)"
               n2 n1)
        else if subset l2 l1 then
          Some
            (Diag.warning ~pass ~subject:t1
               "FD %s is subsumed by %s (smaller determinant, same \
                dependent)"
               n1 n2)
        else None)
    (pairs fds)

let confidence_diags sdb =
  let db = Core.Softdb.db sdb and cat = Core.Softdb.catalog sdb in
  List.filter_map
    (fun (sc : Core.Soft_constraint.t) ->
      if Core.Soft_constraint.is_absolute sc then None
      else
        let conf = Core.Sc_catalog.current_confidence db sc in
        if conf <= Core.Sc_catalog.use_threshold then
          Some
            (Diag.warning ~pass ~subject:sc.Core.Soft_constraint.name
               "decayed confidence %.3f is at or below the planner's use \
                threshold (%.3f): the SSC is dead weight"
               conf Core.Sc_catalog.use_threshold)
        else None)
    (Core.Sc_catalog.usable cat)

let exception_diags sdb =
  let db = Core.Softdb.db sdb and cat = Core.Softdb.catalog sdb in
  List.filter_map
    (fun (name, exc_table) ->
      match Core.Sc_catalog.find cat name with
      | None -> None
      | Some sc ->
          let base = Core.Sc_catalog.rows_of db sc.Core.Soft_constraint.table in
          let exc = Core.Sc_catalog.rows_of db exc_table in
          if
            base > 0
            && float_of_int exc
               > exception_growth_bound *. float_of_int base
          then
            Some
              (Diag.warning ~pass ~subject:name
                 "exception table %s holds %d rows, over %.0f%% of base \
                  table %s (%d rows): the exception-union rewrite has \
                  stopped paying"
                 exc_table exc
                 (100.0 *. exception_growth_bound)
                 sc.Core.Soft_constraint.table base)
          else None)
    (Core.Sc_catalog.exception_tables cat)

let lint sdb =
  contradiction_diags sdb @ band_disjoint_diags sdb @ fd_diags sdb
  @ confidence_diags sdb @ exception_diags sdb
