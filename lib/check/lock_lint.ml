(* Static lock-order analysis.

   The locking discipline is declared, not inferred: a canonical
   [@lock-order <name> rank=<int> [reentrant]] table (lib/srv/session.ml)
   assigns every lock a rank, and each acquisition site carries an
   annotation on its own line or at most three lines above the
   acquiring call (grammar in {!Ann}).

   The lint scans for the raw acquisition tokens (Mutex.lock,
   Condition.wait, and the Rwlock entry points) and fails on:
   - an acquisition token with no annotation in range;
   - a reference to an undeclared lock (acquired, waited-on, or named
     in a [while] held-clause — each with its own diagnostic);
   - conflicting rank declarations for one name;
   - two distinct lock names declaring the same rank (a duplicate rank
     makes "strictly increasing" ambiguous between them);
   - a rank inversion: acquiring a lock while holding one of equal or
     higher rank (same-name re-acquisition is allowed when the lock is
     declared reentrant).

   Rank ordering makes deadlock cycles impossible wherever the declared
   held-sets are accurate — the annotations are the contract reviewers
   keep honest, the lint keeps them from rotting silently, and the
   runtime witness ({!Obs.Lockdep} + {!Lockdep_lint}) checks them
   against the lock orders the server really exhibits. *)

let pass = "lock"

let tokens =
  [
    "Mutex.lock";
    "Condition.wait";
    "Rwlock.acquire_read";
    "Rwlock.acquire_write";
    "Rwlock.read_locked";
    "Rwlock.write_locked";
  ]

let loc file i = Printf.sprintf "%s:%d" file (i + 1)

let lint_sources sources =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* pass 1: aggregate declarations across every scanned file; first
     declaration wins, later disagreements are reported *)
  let all_decls = Ann.collect_decls sources in
  let decls : (string, Ann.decl) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (d : Ann.decl) ->
      match Hashtbl.find_opt decls d.Ann.d_name with
      | Some d0
        when d0.Ann.d_rank <> d.Ann.d_rank
             || d0.Ann.d_reentrant <> d.Ann.d_reentrant ->
          add
            (Diag.error ~pass ~subject:(loc d.Ann.d_file (d.Ann.d_line - 1))
               "conflicting @lock-order declarations for %s (rank %d vs %d)"
               d.Ann.d_name d0.Ann.d_rank d.Ann.d_rank)
      | Some _ -> ()
      | None ->
          (* a duplicate rank under a different name makes "strictly
             increasing" ambiguous between the two locks *)
          Hashtbl.iter
            (fun other (o : Ann.decl) ->
              if o.Ann.d_rank = d.Ann.d_rank then
                add
                  (Diag.error ~pass
                     ~subject:(loc d.Ann.d_file (d.Ann.d_line - 1))
                     "duplicate rank %d: %s and %s declare the same rank"
                     d.Ann.d_rank other d.Ann.d_name))
            decls;
          Hashtbl.replace decls d.Ann.d_name d)
    all_decls;
  let declared name = Hashtbl.find_opt decls name in
  (* pass 2: every acquisition site must be annotated and rank-ordered *)
  List.iter
    (fun (file, contents) ->
      let lines = Array.of_list (Ann.lines_of contents) in
      Array.iteri
        (fun i line ->
          match List.find_opt (fun tok -> Ann.contains line tok) tokens with
          | None -> ()
          | Some tok -> (
              (* state annotations don't annotate acquisitions: skip a
                 @guarded-by sitting between the site and its @acquires *)
              let rec find_ann k =
                if k > 3 || i - k < 0 then None
                else
                  match Ann.parse_ann lines.(i - k) with
                  | Some (Ann.Guarded_by _) | None -> find_ann (k + 1)
                  | Some a -> Some a
              in
              match find_ann 0 with
              | None ->
                  add
                    (Diag.error ~pass ~subject:(loc file i)
                       "unannotated lock acquisition (%s): add @acquires, \
                        @waits, or @lock-ignore"
                       tok)
              | Some Ann.Ignore | Some (Ann.Guarded_by _) -> ()
              | Some (Ann.Waits (name, held)) ->
                  if declared name = None then
                    add
                      (Diag.error ~pass ~subject:(loc file i)
                         "@waits references undeclared lock %s" name);
                  List.iter
                    (fun h ->
                      if declared h = None then
                        add
                          (Diag.error ~pass ~subject:(loc file i)
                             "@waits while clause names undeclared lock %s" h))
                    held
              | Some (Ann.Acquires (name, held)) -> (
                  match declared name with
                  | None ->
                      add
                        (Diag.error ~pass ~subject:(loc file i)
                           "@acquires references undeclared lock %s" name)
                  | Some d ->
                      List.iter
                        (fun h ->
                          match declared h with
                          | None ->
                              add
                                (Diag.error ~pass ~subject:(loc file i)
                                   "held lock %s is undeclared (while clause \
                                    of @acquires %s)"
                                   h name)
                          | Some hd ->
                              if h = name then begin
                                if not d.Ann.d_reentrant then
                                  add
                                    (Diag.error ~pass ~subject:(loc file i)
                                       "re-acquires non-reentrant lock %s"
                                       name)
                              end
                              else if hd.Ann.d_rank >= d.Ann.d_rank then
                                add
                                  (Diag.error ~pass ~subject:(loc file i)
                                     "lock-order violation: acquiring %s \
                                      (rank %d) while holding %s (rank %d)"
                                     name d.Ann.d_rank h hd.Ann.d_rank))
                        held)))
        lines)
    sources;
  List.rev !diags

let lint_files paths = lint_sources (Ann.read_sources paths)
