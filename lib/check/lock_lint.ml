(* Static lock-order analysis (tentpole pass 3).

   The locking discipline is declared, not inferred: a canonical
   [@lock-order <name> rank=<int> [reentrant]] table (lib/srv/session.ml)
   assigns every lock a rank, and each acquisition site carries an
   annotation on its own line or at most three lines above the
   acquiring call:

     (* @acquires <name> [while <held> ...] *)   taking a lock
     (* @waits <name> *)                         Condition.wait on it
     (* @lock-ignore *)                          suppress (test scaffolding)

   The lint scans for the raw acquisition tokens (Mutex.lock,
   Condition.wait, and the Rwlock entry points) and fails on:
   - an acquisition token with no annotation in range;
   - a reference to an undeclared lock (acquired or held);
   - conflicting rank declarations for one name;
   - a rank inversion: acquiring a lock while holding one of equal or
     higher rank (same-name re-acquisition is allowed when the lock is
     declared reentrant).

   Rank ordering makes deadlock cycles impossible wherever the declared
   held-sets are accurate — the annotations are the contract reviewers
   keep honest, and the lint keeps them from rotting silently. *)

let pass = "lock"

let tokens =
  [
    "Mutex.lock";
    "Condition.wait";
    "Rwlock.acquire_read";
    "Rwlock.acquire_write";
    "Rwlock.read_locked";
    "Rwlock.write_locked";
  ]

(* ---- tiny string utilities ------------------------------------------------ *)

let contains_at s i sub =
  i + String.length sub <= String.length s
  && String.sub s i (String.length sub) = sub

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if contains_at s i sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = index_of s sub <> None

let after s marker =
  match index_of s marker with
  | None -> None
  | Some i ->
      let j = i + String.length marker in
      Some (String.sub s j (String.length s - j))

(* whitespace-split words of an annotation tail, stopping at the comment
   terminator *)
let words s =
  String.map (fun c -> if c = '\t' then ' ' else c) s
  |> String.split_on_char ' '
  |> List.filter_map (fun w ->
         let w =
           match index_of w "*)" with
           | Some i -> String.sub w 0 i
           | None -> w
         in
         if w = "" then None else Some w)
  |> List.fold_left
       (fun (acc, stop) w ->
         if stop || w = "*)" then (acc, true) else (w :: acc, false))
       ([], false)
  |> fst |> List.rev

let lines_of contents = String.split_on_char '\n' contents

(* ---- annotation grammar --------------------------------------------------- *)

type decl = { rank : int; reentrant : bool }
type ann = Acquires of string * string list | Waits of string | Ignore

let parse_decl line =
  match after line "@lock-order" with
  | None -> None
  | Some tail -> (
      match words tail with
      | name :: rest ->
          let rank =
            List.find_map
              (fun w ->
                match after w "rank=" with
                | Some v -> int_of_string_opt v
                | None -> None)
              rest
          in
          Option.map
            (fun rank -> (name, { rank; reentrant = List.mem "reentrant" rest }))
            rank
      | [] -> None)

let parse_ann line =
  if contains line "@lock-ignore" then Some Ignore
  else
    match after line "@acquires" with
    | Some tail -> (
        match words tail with
        | name :: rest ->
            let rec held = function
              | "while" :: hs -> hs
              | _ :: tl -> held tl
              | [] -> []
            in
            Some (Acquires (name, held rest))
        | [] -> None)
    | None -> (
        match after line "@waits" with
        | Some tail -> (
            match words tail with name :: _ -> Some (Waits name) | [] -> None)
        | None -> None)

(* ---- the lint ------------------------------------------------------------- *)

let loc file i = Printf.sprintf "%s:%d" file (i + 1)

let lint_sources sources =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* pass 1: aggregate declarations across every scanned file *)
  let decls : (string, decl) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (file, contents) ->
      List.iteri
        (fun i line ->
          match parse_decl line with
          | None -> ()
          | Some (name, d) -> (
              match Hashtbl.find_opt decls name with
              | Some d0 when d0 <> d ->
                  add
                    (Diag.error ~pass ~subject:(loc file i)
                       "conflicting @lock-order declarations for %s (rank %d \
                        vs %d)"
                       name d0.rank d.rank)
              | Some _ -> ()
              | None -> Hashtbl.replace decls name d))
        (lines_of contents))
    sources;
  let declared name = Hashtbl.find_opt decls name in
  (* pass 2: every acquisition site must be annotated and rank-ordered *)
  List.iter
    (fun (file, contents) ->
      let lines = Array.of_list (lines_of contents) in
      Array.iteri
        (fun i line ->
          match List.find_opt (fun tok -> contains line tok) tokens with
          | None -> ()
          | Some tok -> (
              let rec find_ann k =
                if k > 3 || i - k < 0 then None
                else
                  match parse_ann lines.(i - k) with
                  | Some a -> Some a
                  | None -> find_ann (k + 1)
              in
              match find_ann 0 with
              | None ->
                  add
                    (Diag.error ~pass ~subject:(loc file i)
                       "unannotated lock acquisition (%s): add @acquires, \
                        @waits, or @lock-ignore"
                       tok)
              | Some Ignore -> ()
              | Some (Waits name) ->
                  if declared name = None then
                    add
                      (Diag.error ~pass ~subject:(loc file i)
                         "@waits references undeclared lock %s" name)
              | Some (Acquires (name, held)) -> (
                  match declared name with
                  | None ->
                      add
                        (Diag.error ~pass ~subject:(loc file i)
                           "@acquires references undeclared lock %s" name)
                  | Some d ->
                      List.iter
                        (fun h ->
                          match declared h with
                          | None ->
                              add
                                (Diag.error ~pass ~subject:(loc file i)
                                   "held lock %s is undeclared" h)
                          | Some hd ->
                              if h = name then begin
                                if not d.reentrant then
                                  add
                                    (Diag.error ~pass ~subject:(loc file i)
                                       "re-acquires non-reentrant lock %s"
                                       name)
                              end
                              else if hd.rank >= d.rank then
                                add
                                  (Diag.error ~pass ~subject:(loc file i)
                                     "lock-order violation: acquiring %s \
                                      (rank %d) while holding %s (rank %d)"
                                     name d.rank h hd.rank))
                        held)))
        lines)
    sources;
  List.rev !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_files paths =
  lint_sources (List.map (fun p -> (p, read_file p)) paths)
