(** The cost model: a simple I/O + CPU formula family in the System-R
    tradition, parameterized so experiments can shift the I/O/CPU
    balance.  All costs are in abstract "page-fetch equivalents". *)

type params = {
  cpu_tuple : float;  (** processing one tuple *)
  cpu_compare : float;  (** one comparison during sort *)
  io_page : float;  (** reading one page *)
  index_probe : float;  (** descending a B+-tree *)
  hash_build_tuple : float;
}

val default_params : params

val seq_scan : params -> pages:float -> rows:float -> float

val index_scan : params -> pages:float -> rows:float -> match_rows:float ->
  float
(** Probe + matching fraction of the pages (clustered assumption) +
    CPU. *)

val index_only_scan :
  params -> entries_per_page:float -> match_rows:float -> float
(** Probe + leaf pages of narrow key entries + CPU; never touches the
    heap. *)

val hash_join :
  params -> left_rows:float -> right_rows:float -> out_rows:float -> float

val nested_loop_join :
  params -> left_rows:float -> right_rows:float -> out_rows:float -> float

val sort : params -> rows:float -> float
val group : params -> rows:float -> float

val pp_params : Format.formatter -> params -> unit
