open Exec
(* EXPLAIN: end-to-end optimization of a parsed query with a readable
   trace — the rewritten statement, the rules that fired, the twin
   predicates the cardinality model saw, estimates, and the physical
   plan. *)

type report = {
  original : Sqlfe.Ast.query;
  logical : Logical.t;
  rewritten : Logical.t;
  applied : Rewrite.applied list;
  estimated_cardinality : float;
  plan : Plan.t;
  estimated_cost : float;
  guards : string list;
  backup_plan : Plan.t option;
}

(* Estimation-only rewrites (twins) never change results, so they need no
   guard; every other fired rule did change the plan's semantics on the
   strength of some constraint. *)
let result_changing applied =
  List.filter (fun (a : Rewrite.applied) -> a.Rewrite.rule <> "twinning")
    applied

(* Index-only access is decided inside the planner, not the rewriter;
   collect each such scan so it can be surfaced as an applied
   "index_only" entry — with a certificate, a guard, and a backup —
   like any other result-changing transformation. *)
let rec index_only_accesses (plan : Plan.t) acc =
  match plan with
  | Plan.Index_only_scan { table; alias; index; _ } ->
      (index, table, alias) :: acc
  | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Partition_scan _ -> acc
  | Plan.Scatter_gather { children; _ } ->
      List.fold_left
        (fun acc (_, p) -> index_only_accesses p acc)
        acc children
  | Plan.Filter { input; _ }
  | Plan.Project { input; _ }
  | Plan.Sort { input; _ }
  | Plan.Group { input; _ }
  | Plan.Limit { input; _ } ->
      index_only_accesses input acc
  | Plan.Distinct input -> index_only_accesses input acc
  | Plan.Nested_loop_join { left; right; _ }
  | Plan.Hash_join { left; right; _ }
  | Plan.Merge_join { left; right; _ } ->
      index_only_accesses left (index_only_accesses right acc)
  | Plan.Union_all inputs ->
      List.fold_left (fun acc p -> index_only_accesses p acc) acc inputs

let optimize (ctx : Rewrite.ctx) (penv : Planner.env) (q : Sqlfe.Ast.query) :
    report =
  let logical = Logical.of_query q in
  let rewritten, applied = Rewrite.rewrite ctx logical in
  let plan, cost = Planner.plan_query penv rewritten in
  let idx_applied =
    List.map
      (fun (index, table, alias) ->
        {
          Rewrite.rule = "index_only";
          detail =
            Printf.sprintf "%s (%s) answered from index %s alone" alias
              table index;
          sc = Some ("idx:" ^ index);
          premises = [ "idx:" ^ index ];
          delta = Rewrite.Index_access { index; table; alias };
        })
      (List.rev (index_only_accesses plan []))
  in
  let applied = applied @ idx_applied in
  let changing = result_changing applied in
  let guards =
    List.sort_uniq String.compare
      (List.filter_map (fun (a : Rewrite.applied) -> a.Rewrite.sc) changing)
  in
  let backup_plan =
    (* only needed when a rewrite actually changed the query: the backup
       is the plan of the unrewritten logical form (§4.1's "'backup' plan
       which is ASC-free") — and, when the primary leans on an index,
       planned with indexes disabled entirely, so a demotion mid-flight
       can never invalidate the fallback too *)
    if changing = [] then None
    else
      let bpenv =
        if idx_applied <> [] then { penv with Planner.use_indexes = false }
        else penv
      in
      Some (fst (Planner.plan_query bpenv logical))
  in
  {
    original = q;
    logical;
    rewritten;
    applied;
    estimated_cardinality =
      Selectivity.query_cardinality (Planner.sel_env penv) rewritten;
    plan;
    estimated_cost = cost;
    guards;
    backup_plan;
  }

(* ---- rewrite certificates ------------------------------------------------- *)

(* A certificate is the per-rewrite view [softdb check] re-derives
   soundness from: the rule, its SC premises, the structural delta, and
   whether the delta can change results.  It is a projection of
   [report.applied] — kept as a separate type so the checker does not
   depend on how the rewriter logs. *)
type certificate = {
  cert_rule : string;
  cert_detail : string;
  cert_premises : string list;
  cert_delta : Rewrite.delta;
  cert_result_changing : bool;
}

let certificate_of (a : Rewrite.applied) =
  {
    cert_rule = a.Rewrite.rule;
    cert_detail = a.Rewrite.detail;
    cert_premises = a.Rewrite.premises;
    cert_delta = a.Rewrite.delta;
    cert_result_changing = Rewrite.delta_changes_results a.Rewrite.delta;
  }

let certificates r = List.map certificate_of r.applied

let pp_certificate ppf c =
  Fmt.pf ppf "%s [%s] {%a} premises: %s" c.cert_rule
    (if c.cert_result_changing then "result-changing" else "estimation-only")
    Rewrite.pp_delta c.cert_delta
    (match c.cert_premises with
    | [] -> "(none)"
    | ps -> String.concat ", " ps)

let pp_certificates ppf r =
  match certificates r with
  | [] -> Fmt.pf ppf "certificates: (none)@."
  | certs ->
      Fmt.pf ppf "certificates:@.";
      List.iter (fun c -> Fmt.pf ppf "  - %a@." pp_certificate c) certs

(* Everything shown by EXPLAIN except the plan tree itself; shared with
   EXPLAIN ANALYZE, which renders its own annotated tree. *)
let pp_header ppf r =
  Fmt.pf ppf "original : %s@." (Sqlfe.Printer.query_to_string r.original);
  Fmt.pf ppf "rewritten: %s@."
    (Sqlfe.Printer.query_to_string (Logical.to_query r.rewritten));
  (match r.applied with
  | [] -> Fmt.pf ppf "rewrites : (none)@."
  | rules ->
      Fmt.pf ppf "rewrites :@.";
      List.iter (fun a -> Fmt.pf ppf "  - %a@." Rewrite.pp_applied a) rules);
  let rec twins ppf = function
    | Logical.Block b ->
        List.iter
          (fun (p : Logical.pred_item) ->
            if p.Logical.estimation_only then
              Fmt.pf ppf "  ~ %a@." Logical.pp_pred_item p)
          b.Logical.preds
    | Logical.Union ts -> List.iter (twins ppf) ts
  in
  twins ppf r.rewritten

let pp ppf r =
  pp_header ppf r;
  Fmt.pf ppf "est. rows: %.1f  est. cost: %.1f@." r.estimated_cardinality
    r.estimated_cost;
  Fmt.pf ppf "plan:@.%a" (Plan.pp ~indent:2) r.plan

let to_string r = Fmt.str "%a" pp r

(* ---- EXPLAIN ANALYZE ------------------------------------------------------ *)

(* Per-node cardinality estimation over the *physical* plan, so the
   annotated tree can show estimated vs. actual rows at every operator.
   Scan nodes reuse the blended (twin-aware) per-table estimates computed
   on the rewritten logical query; everything above applies the same
   default filter factors the block estimator uses.  This is a display
   model — the cost-based choices were already made by the planner. *)

let norm = String.lowercase_ascii

(* per-alias blended output estimate, from the rewritten logical query *)
let rec alias_estimates senv (l : Logical.t) acc =
  match l with
  | Logical.Block b ->
      let e = Selectivity.estimate_block senv b in
      List.fold_left
        (fun acc (alias, base, sel) -> (norm alias, base *. sel) :: acc)
        acc e.Selectivity.per_table
  | Logical.Union ts ->
      List.fold_left (fun acc t -> alias_estimates senv t acc) acc ts

(* the scans visible below a node: alias -> table *)
let rec scans_below plan acc =
  match plan with
  | Plan.Seq_scan { table; alias; _ }
  | Plan.Index_scan { table; alias; _ }
  | Plan.Index_only_scan { table; alias; _ }
  | Plan.Partition_scan { table; alias; _ }
  | Plan.Scatter_gather { table; alias; _ } ->
      (norm alias, table) :: acc
  | Plan.Filter { input; _ }
  | Plan.Project { input; _ }
  | Plan.Sort { input; _ }
  | Plan.Group { input; _ }
  | Plan.Limit { input; _ } ->
      scans_below input acc
  | Plan.Distinct input -> scans_below input acc
  | Plan.Nested_loop_join { left; right; _ }
  | Plan.Hash_join { left; right; _ }
  | Plan.Merge_join { left; right; _ } ->
      scans_below left (scans_below right acc)
  | Plan.Union_all inputs ->
      List.fold_left (fun acc p -> scans_below p acc) acc inputs

let table_of_col senv scans (r : Rel.Expr.col_ref) =
  match r.Rel.Expr.rel with
  | Some q -> List.assoc_opt (norm q) scans
  | None ->
      List.find_map
        (fun (_, table) ->
          match Rel.Database.find_table senv.Selectivity.db table with
          | Some tbl
            when Rel.Schema.find_index (Rel.Table.schema tbl) r.Rel.Expr.col
                 <> None ->
              Some table
          | _ -> None)
        scans

let ndv_of senv scans (r : Rel.Expr.col_ref) =
  match table_of_col senv scans r with
  | Some table -> Selectivity.ndv senv ~table ~column:r.Rel.Expr.col
  | None -> 25

let rec pred_sel senv scans (p : Rel.Expr.pred) =
  let open Rel in
  match p with
  | Expr.Ptrue -> 1.0
  | Expr.Pfalse -> 0.0
  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
      1.0
      /. float_of_int (max (ndv_of senv scans a) (ndv_of senv scans b))
  | Expr.Cmp (Expr.Ne, _, _) -> 1.0 -. Selectivity.default_eq
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) ->
      Selectivity.default_range
  | Expr.Cmp (Expr.Eq, _, _) -> Selectivity.default_eq
  | Expr.Between _ -> Selectivity.default_range /. 2.0
  | Expr.In_list (_, vs) ->
      Float.min 1.0 (Selectivity.default_eq *. float_of_int (List.length vs))
  | Expr.Is_null _ -> Selectivity.default_eq
  | Expr.Is_not_null _ -> 1.0 -. Selectivity.default_eq
  | Expr.And (a, b) -> pred_sel senv scans a *. pred_sel senv scans b
  | Expr.Or (a, b) ->
      let sa = pred_sel senv scans a and sb = pred_sel senv scans b in
      Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Not a -> Float.max 0.0 (1.0 -. pred_sel senv scans a)

(* The planner hands both scan shapes the full conjoined local filter
   (the index probe range is also kept as residual), so rows × filter
   selectivity is the right estimate for either; the blended per-alias
   estimate additionally folds in estimation-only twins. *)
let scan_estimate senv alias_est ~table ~alias ~filter =
  match List.assoc_opt (norm alias) alias_est with
  | Some e -> e
  | None ->
      let rows = Selectivity.table_cardinality senv table in
      let preds = List.map Selectivity.localize (Rel.Expr.conjuncts filter) in
      rows *. Selectivity.conjunct_selectivity senv ~table preds

let rec estimate senv alias_est (plan : Plan.t) =
  match plan with
  | Plan.Seq_scan { table; alias; filter } ->
      scan_estimate senv alias_est ~table ~alias ~filter
  | Plan.Index_scan { table; alias; filter; _ }
  | Plan.Index_only_scan { table; alias; filter; _ } ->
      scan_estimate senv alias_est ~table ~alias ~filter
  | Plan.Scatter_gather { table; alias; children; _ } -> (
      (* the gather of all surviving partitions re-produces the blended
         per-alias estimate; a partial gather scales it by the surviving
         row fraction *)
      let whole = scan_estimate senv alias_est ~table ~alias ~filter:Rel.Expr.Ptrue in
      match Rel.Database.partitioning senv.Selectivity.db table with
      | None -> whole
      | Some part ->
          let total =
            List.init (Rel.Partition.count part) (Rel.Partition.rows part)
            |> List.fold_left ( + ) 0
          in
          let surviving =
            List.fold_left
              (fun acc (i, _) -> acc + Rel.Partition.rows part i)
              0 children
          in
          if total = 0 then 0.0
          else whole *. (float_of_int surviving /. float_of_int total))
  | Plan.Partition_scan { table; alias; filter; partition } -> (
      let whole = scan_estimate senv alias_est ~table ~alias ~filter in
      match Rel.Database.partitioning senv.Selectivity.db table with
      | None -> whole
      | Some part ->
          let total =
            List.init (Rel.Partition.count part) (Rel.Partition.rows part)
            |> List.fold_left ( + ) 0
          in
          if total = 0 then 0.0
          else
            whole
            *. (float_of_int (Rel.Partition.rows part partition)
               /. float_of_int total))
  | Plan.Filter { input; pred } ->
      estimate senv alias_est input
      *. pred_sel senv (scans_below input []) pred
  | Plan.Project { input; _ } | Plan.Sort { input; _ } ->
      estimate senv alias_est input
  | Plan.Distinct input ->
      (* approximation: no reduction, matching the block estimator *)
      estimate senv alias_est input
  | Plan.Nested_loop_join { left; right; pred } ->
      estimate senv alias_est left
      *. estimate senv alias_est right
      *. pred_sel senv (scans_below plan []) pred
  | Plan.Hash_join { left; right; left_keys; right_keys; residual }
  | Plan.Merge_join { left; right; left_keys; right_keys; residual } ->
      let scans = scans_below plan [] in
      let key_sel l r =
        match (l, r) with
        | Rel.Expr.Col a, Rel.Expr.Col b ->
            1.0
            /. float_of_int (max (ndv_of senv scans a) (ndv_of senv scans b))
        | _ -> Selectivity.default_eq
      in
      let rec keys_sel ls rs =
        match (ls, rs) with
        | l :: ltl, r :: rtl -> key_sel l r *. keys_sel ltl rtl
        | _ -> 1.0
      in
      estimate senv alias_est left
      *. estimate senv alias_est right
      *. keys_sel left_keys right_keys
      *. pred_sel senv scans residual
  | Plan.Group { input; keys; _ } ->
      let inp = estimate senv alias_est input in
      if keys = [] then 1.0
      else
        let scans = scans_below input [] in
        let groups =
          List.fold_left
            (fun acc (e, _) ->
              acc
              *.
              match e with
              | Rel.Expr.Col r -> float_of_int (ndv_of senv scans r)
              | _ -> 25.0)
            1.0 keys
        in
        Float.min inp groups
  | Plan.Union_all inputs ->
      List.fold_left (fun acc p -> acc +. estimate senv alias_est p) 0.0 inputs
  | Plan.Limit { input; n } ->
      Float.min (estimate senv alias_est input) (float_of_int n)

(* single-line operator labels for the annotated tree *)
let node_label (plan : Plan.t) =
  let open Rel in
  match plan with
  | Plan.Seq_scan { table; alias; filter } ->
      Fmt.str "SeqScan %s%s%a" table
        (if alias = table then "" else " as " ^ alias)
        Plan.pp_filter filter
  | Plan.Index_scan { table; alias; index; lo; hi; filter } ->
      Fmt.str "IndexScan %s%s using %s [%a, %a]%a" table
        (if alias = table then "" else " as " ^ alias)
        index Plan.pp_bound lo Plan.pp_bound hi Plan.pp_filter filter
  | Plan.Index_only_scan { table; alias; index; columns; lo; hi; filter } ->
      Fmt.str "IndexOnlyScan %s%s using %s (%s) [%a, %a]%a" table
        (if alias = table then "" else " as " ^ alias)
        index
        (String.concat ", " columns)
        Plan.pp_bound lo Plan.pp_bound hi Plan.pp_filter filter
  | Plan.Filter { pred; _ } -> Fmt.str "Filter %a" Expr.pp_pred pred
  | Plan.Project { exprs; _ } ->
      Fmt.str "Project %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, n) ->
             Fmt.pf ppf "%a as %s" Expr.pp e n))
        exprs
  | Plan.Nested_loop_join { pred; _ } ->
      Fmt.str "NestedLoopJoin on %a" Expr.pp_pred pred
  | Plan.Hash_join { left_keys; right_keys; residual; _ } ->
      Fmt.str "HashJoin %a = %a%a"
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        left_keys
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        right_keys Plan.pp_filter residual
  | Plan.Merge_join { left_keys; right_keys; residual; _ } ->
      Fmt.str "MergeJoin %a = %a%a"
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        left_keys
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        right_keys Plan.pp_filter residual
  | Plan.Sort { keys; _ } ->
      Fmt.str "Sort %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k : Plan.sort_key) ->
             Fmt.pf ppf "%a%s" Expr.pp k.Plan.key
               (if k.Plan.asc then "" else " desc")))
        keys
  | Plan.Group { keys; aggs; _ } ->
      Fmt.str "Group by %a aggs %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, _) -> Expr.pp ppf e))
        keys
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a : Plan.agg) ->
             Fmt.pf ppf "%s(%a)"
               (Plan.agg_fn_name a.Plan.fn)
               Fmt.(option ~none:(any "*") Expr.pp)
               a.Plan.arg))
        aggs
  | Plan.Distinct _ -> "Distinct"
  | Plan.Union_all inputs ->
      Fmt.str "UnionAll (%d branches)" (List.length inputs)
  | Plan.Limit { n; _ } -> Fmt.str "Limit %d" n
  | Plan.Partition_scan { table; alias; partition; filter } ->
      Fmt.str "PartitionScan %s%s partition %d%a" table
        (if alias = table then "" else " as " ^ alias)
        partition Plan.pp_filter filter
  | Plan.Scatter_gather { table; alias; children } ->
      Fmt.str "ScatterGather %s%s (%d partitions)" table
        (if alias = table then "" else " as " ^ alias)
        (List.length children)

let children (plan : Plan.t) =
  match plan with
  | Plan.Seq_scan _ | Plan.Index_scan _ | Plan.Index_only_scan _
  | Plan.Partition_scan _ ->
      []
  | Plan.Scatter_gather { children; _ } -> List.map snd children
  | Plan.Filter { input; _ }
  | Plan.Project { input; _ }
  | Plan.Sort { input; _ }
  | Plan.Group { input; _ }
  | Plan.Limit { input; _ } ->
      [ input ]
  | Plan.Distinct input -> [ input ]
  | Plan.Nested_loop_join { left; right; _ }
  | Plan.Hash_join { left; right; _ }
  | Plan.Merge_join { left; right; _ } ->
      [ left; right ]
  | Plan.Union_all inputs -> inputs

type node_stat = {
  depth : int;
  label : string;
  est_rows : float;
  actual_rows : int;
  node_q_error : float;
  elapsed_s : float; (* wall clock, children included; informational *)
}

type analysis = {
  a_report : report;
  result : Executor.result;
  nodes : node_stat list; (* preorder *)
  total_q_error : float; (* root estimate vs. root actual *)
}

let analyze (ctx : Rewrite.ctx) (penv : Planner.env) (q : Sqlfe.Ast.query) :
    analysis =
  let report = optimize ctx penv q in
  let db = penv.Planner.db in
  let senv = Planner.sel_env penv in
  let alias_est = alias_estimates senv report.rewritten [] in
  let counters = Operators.Counters.create () in
  let rows, node_stats =
    Operators.run_instrumented db ~counters report.plan
  in
  let result =
    { Executor.columns = Executor.column_names db report.plan; rows; counters }
  in
  let stat_of node =
    Option.map snd (List.find_opt (fun (p, _) -> p == node) node_stats)
  in
  let rec walk depth plan acc =
    let est = estimate senv alias_est plan in
    let actual, elapsed =
      match stat_of plan with
      | Some s -> (s.Operators.Node.produced, s.Operators.Node.elapsed_s)
      | None -> (0, 0.0) (* node never opened *)
    in
    let node =
      {
        depth;
        label = node_label plan;
        est_rows = est;
        actual_rows = actual;
        node_q_error = Obs.Feedback.q_error ~estimated:est ~actual;
        elapsed_s = elapsed;
      }
    in
    List.fold_left
      (fun acc child -> walk (depth + 1) child acc)
      (node :: acc) (children plan)
  in
  let nodes = List.rev (walk 0 report.plan []) in
  {
    a_report = report;
    result;
    nodes;
    total_q_error =
      Obs.Feedback.q_error ~estimated:report.estimated_cardinality
        ~actual:(List.length rows);
  }

let rewrite_counts r =
  List.fold_left
    (fun acc (a : Rewrite.applied) ->
      let n = try List.assoc a.Rewrite.rule acc with Not_found -> 0 in
      (a.Rewrite.rule, n + 1) :: List.remove_assoc a.Rewrite.rule acc)
    [] r.applied
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let node_q_error_max a =
  List.fold_left (fun m n -> Float.max m n.node_q_error) 1.0 a.nodes

let node_q_error_geomean a =
  match a.nodes with
  | [] -> 1.0
  | nodes ->
      let log_sum =
        List.fold_left (fun s n -> s +. Float.log (max n.node_q_error 1.0))
          0.0 nodes
      in
      Float.exp (log_sum /. float_of_int (List.length nodes))

let pp_analysis ppf a =
  pp_header ppf a.a_report;
  Fmt.pf ppf "est. rows: %.1f  actual rows: %d  q-error: %.2f@."
    a.a_report.estimated_cardinality
    (List.length a.result.Executor.rows)
    a.total_q_error;
  Fmt.pf ppf "plan:@.";
  List.iter
    (fun n ->
      Fmt.pf ppf "%s%s (est=%.1f actual=%d q=%.2f time=%.3fms)@."
        (String.make (2 + (2 * n.depth)) ' ')
        n.label n.est_rows n.actual_rows n.node_q_error (n.elapsed_s *. 1000.0))
    a.nodes;
  Fmt.pf ppf "exec     : %a@." Operators.Counters.pp
    a.result.Executor.counters

let analysis_to_string a = Fmt.str "%a" pp_analysis a
