(** The semantic rewrite engine: every constraint-exploiting
    transformation the paper describes, each gated by a flag so the
    experiments can ablate.

    Semantics-preserving rules — require enforced / informational ICs or
    {e valid absolute} soft constraints:
    - join elimination over referential integrity (paper §2, [6]);
    - predicate introduction from check-shaped statements (§2, [10]) —
      both equality folding ({!predicate_introduction}) and range
      propagation through typed bands ({!shape_introduction});
    - join-hole range trimming (§2, [8]);
    - union-all branch pruning by branch constraints (§5);
    - group-by / order-by simplification via FDs (§2, [29]);
    - exception-table union plans (ASC-as-AST, §4.4).

    Estimation-only rule (statistical soft constraints):
    - predicate twinning with confidence (§5.1).

    Soundness notes enforced here and exercised by the property tests:
    a check constraint passes on UNKNOWN while a WHERE conjunct filters
    it, so every introduced predicate requires its unbound columns to be
    declared NOT NULL; unsatisfiability pruning only fires on
    contradictions anchored by a query predicate; the exception-union
    fast branch carries the fully folded check so the two branches
    partition qualifying rows exactly. *)

open Rel

type flags = {
  join_elimination : bool;
  predicate_introduction : bool;
  hole_trimming : bool;
  unionall_pruning : bool;
  fd_simplification : bool;
  exception_union : bool;
  twinning : bool;
  partition_pruning : bool;
}

val all_on : flags
val all_off : flags

(** Statistical soft constraints usable for twinning come in the shapes
    the miners produce. *)
type ssc_shape =
  | Diff_band of Mining.Diff_band.t * Mining.Diff_band.band
  | Corr_band of Mining.Correlation.t * Mining.Correlation.band

type ssc = { ssc_name : string; shape : ssc_shape }

(** An ASC maintained as an exception table: [exc_check] holds for every
    base-table row NOT recorded in [exc_table]. *)
type exception_info = {
  exc_constraint : string;
  exc_base_table : string;
  exc_table : string;
  exc_check : Expr.pred;
}

type named_fd = { fd_sc : string option; fd : Mining.Fd_mine.fd }
(** A mined FD tagged with the catalog constraint it came from (None for
    artifacts fed in directly, e.g. by unit tests), so certificates can
    name their premises. *)

type named_holes = { holes_sc : string option; holes : Mining.Join_holes.t }

type part_sc = {
  part_sc_name : string option;
  part_table : string;
  part_index : int;
  part_pred : Expr.pred;
}
(** A valid absolute partition-domain SC: every row of [part_table] that
    routes to segment [part_index] satisfies [part_pred].  Usually
    tighter than the routing bounds — the overturnable premise behind a
    guarded partition prune. *)

type ctx = {
  db : Database.t;
  flags : flags;
  ascs : Icdef.t list;  (** valid absolute soft constraints *)
  asc_shapes : ssc list;
      (** the same ASCs in typed mined form (bands valid at 100%),
          enabling range propagation where generic folding needs an
          equality *)
  sscs : ssc list;
  fds : named_fd list;  (** valid (ASC-class) FDs *)
  holes : named_holes list;
  exceptions : exception_info list;
  parts : part_sc list;  (** valid partition-domain SCs *)
}

val make_ctx :
  ?flags:flags -> ?ascs:Icdef.t list -> ?asc_shapes:ssc list ->
  ?sscs:ssc list -> ?fds:named_fd list ->
  ?holes:named_holes list -> ?exceptions:exception_info list ->
  ?parts:part_sc list -> Database.t -> ctx

(** The structural change a rewrite made to the plan — together with the
    premise list this forms the machine-checkable certificate that
    {!Check.Cert} re-derives soundness from, independent of the rule
    implementation that fired. *)
type delta =
  | Source_removed of { alias : string; table : string }
  | Pred_added of Expr.pred
      (** executable conjunct appended to WHERE *)
  | Pred_twinned of { pred : Expr.pred; confidence : float }
      (** estimation-only: must never reach the physical plan *)
  | Order_key_dropped of { alias : string; col : string }
  | Group_key_dropped of string
  | Union_split of { fast_pred : Expr.pred; exc_table : string }
  | Branch_pruned
  | Block_falsified
  | Partition_pruned of { table : string; alias : string; partition : int }
      (** the named partition was eliminated from the named source;
          sound iff its partition constraint contradicts the query
          predicates ({!Check.Cert} re-derives this) *)
  | Index_access of { index : string; table : string; alias : string }
      (** the planner answered the alias from the index alone
          (index-only scan): sound while the index is readable and its
          key covers every column the block needs — guarded at
          execution by ["idx:<name>"] *)

val delta_changes_results : delta -> bool
(** [false] only for {!Pred_twinned}: every other delta alters the
    executable plan and therefore needs an absolute (or enforced)
    basis. *)

type applied = {
  rule : string;
  detail : string;
  sc : string option;
      (** the soft constraint (or IC) the rewrite relied on, for
          plan-cache dependency tracking (paper §4.1) *)
  premises : string list;
      (** every constraint name the soundness argument rests on: [sc]
          plus secondary witnesses (the key behind a join elimination,
          the checks behind an unsatisfiability proof, ...) *)
  delta : delta;
}
(** One fired rewrite — certificate included — for EXPLAIN, the
    experiment logs, plan-cache dependencies, and [softdb check]. *)

val rewrite : ctx -> Logical.t -> Logical.t * applied list
(** Run the full pipeline: pruning and join elimination and predicate
    introduction, then exception-union splitting, then hole trimming, FD
    simplification and twinning on each resulting block. *)

val block_unsatisfiable : ctx -> Logical.block -> bool

val pp_applied : Format.formatter -> applied -> unit
val pp_delta : Format.formatter -> delta -> unit
