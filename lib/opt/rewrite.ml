(* The semantic rewrite engine: every constraint-exploiting transformation
   the paper describes, each gated by a flag so experiments can ablate.

   Semantics-preserving rules (require enforced / informational ICs or
   *valid absolute* soft constraints):
   - join elimination over referential integrity        (paper §2, [6])
   - predicate introduction from check-shaped statements (paper §2, [10])
   - join-hole range trimming                            (paper §2, [8])
   - union-all branch pruning by branch constraints      (paper §5)
   - group-by / order-by simplification via FDs          (paper §2, [29])
   - exception-table union plans (ASC-as-AST)            (paper §4.4)

   Estimation-only rule (statistical soft constraints):
   - predicate twinning with confidence                  (paper §5.1) *)

open Rel

type flags = {
  join_elimination : bool;
  predicate_introduction : bool;
  hole_trimming : bool;
  unionall_pruning : bool;
  fd_simplification : bool;
  exception_union : bool;
  twinning : bool;
  partition_pruning : bool;
}

let all_on =
  {
    join_elimination = true;
    predicate_introduction = true;
    hole_trimming = true;
    unionall_pruning = true;
    fd_simplification = true;
    exception_union = true;
    twinning = true;
    partition_pruning = true;
  }

let all_off =
  {
    join_elimination = false;
    predicate_introduction = false;
    hole_trimming = false;
    unionall_pruning = false;
    fd_simplification = false;
    exception_union = false;
    twinning = false;
    partition_pruning = false;
  }

(* Statistical soft constraints usable for twinning come in the shapes our
   miners produce. *)
type ssc_shape =
  | Diff_band of Mining.Diff_band.t * Mining.Diff_band.band
  | Corr_band of Mining.Correlation.t * Mining.Correlation.band

type ssc = { ssc_name : string; shape : ssc_shape }

(* An ASC maintained as an exception table (AST): [exc_check] holds for
   every base-table row that is NOT recorded in [exc_table]. *)
type exception_info = {
  exc_constraint : string;
  exc_base_table : string;
  exc_table : string;
  exc_check : Expr.pred;
}

(* Mined artifacts keep the name of the catalog constraint they came from
   (None for artifacts fed in directly, e.g. by unit tests), so the
   certificates emitted below can name their premises precisely. *)
type named_fd = { fd_sc : string option; fd : Mining.Fd_mine.fd }
type named_holes = { holes_sc : string option; holes : Mining.Join_holes.t }

(* A valid absolute partition-domain SC: every row of [part_table] that
   routes to segment [part_index] satisfies [part_pred] — usually tighter
   than the routing bounds, which is what makes it worth guarding. *)
type part_sc = {
  part_sc_name : string option;
  part_table : string;
  part_index : int;
  part_pred : Expr.pred;
}

type ctx = {
  db : Database.t;
  flags : flags;
  ascs : Icdef.t list; (* valid absolute soft constraints *)
  asc_shapes : ssc list;
    (* the same ASCs in typed mined form (bands valid at 100%), enabling
       *range* propagation where generic check folding needs an equality *)
  sscs : ssc list;
  fds : named_fd list; (* valid (ASC-class) FDs *)
  holes : named_holes list; (* valid hole sets *)
  exceptions : exception_info list;
  parts : part_sc list; (* valid partition-domain SCs *)
}

let make_ctx ?(flags = all_on) ?(ascs = []) ?(asc_shapes = []) ?(sscs = [])
    ?(fds = []) ?(holes = []) ?(exceptions = []) ?(parts = []) db =
  { db; flags; ascs; asc_shapes; sscs; fds; holes; exceptions; parts }

(* The structural change a rewrite made to the plan — one constructor per
   way a transformation can alter semantics (or, for twins, estimation).
   Together with [premises] this is the machine-checkable certificate
   that {!Check.Cert} re-derives soundness from, independent of the code
   that fired the rule. *)
type delta =
  | Source_removed of { alias : string; table : string }
  | Pred_added of Expr.pred (* executable conjunct appended to WHERE *)
  | Pred_twinned of { pred : Expr.pred; confidence : float }
      (* estimation-only: must never reach the physical plan *)
  | Order_key_dropped of { alias : string; col : string }
  | Group_key_dropped of string
  | Union_split of { fast_pred : Expr.pred; exc_table : string }
  | Branch_pruned
  | Block_falsified
  | Partition_pruned of { table : string; alias : string; partition : int }
  | Index_access of { index : string; table : string; alias : string }
      (* the planner answered the alias from the index alone (index-only
         scan): sound while the index is readable and its key covers
         every column the block needs — guarded at execution by
         "idx:<name>" *)

(* Twins are the one delta that cannot change results; everything else
   alters the executable plan and therefore needs an absolute basis. *)
let delta_changes_results = function Pred_twinned _ -> false | _ -> true

type applied = {
  rule : string;
  detail : string;
  sc : string option;
      (* the soft constraint (or IC) this rewrite relied on, for
         plan-cache dependency tracking (paper §4.1) *)
  premises : string list;
      (* every constraint name the soundness argument rests on: [sc]
         plus secondary witnesses (the key behind a join elimination,
         the checks behind an unsatisfiability proof, ...) *)
  delta : delta;
}

let log ?sc ?(premises = []) ~delta applied rule fmt =
  let premises =
    List.sort_uniq String.compare (Option.to_list sc @ premises)
  in
  Printf.ksprintf
    (fun detail -> applied := { rule; detail; sc; premises; delta } :: !applied)
    fmt

(* ---- constraint lookup helpers ----------------------------------------- *)

let norm = String.lowercase_ascii

(* ICs the optimizer may rely on: enforced and informational alike, plus
   the valid ASCs (the paper's point: a valid ASC is as good as an IC). *)
let usable_constraints ctx table =
  Database.constraints_on ctx.db table
  @ List.filter (fun ic -> norm ic.Icdef.table = norm table) ctx.ascs

let usable_checks ctx table =
  List.filter_map
    (fun ic ->
      match ic.Icdef.body with
      | Icdef.Check p -> Some (ic.Icdef.name, p)
      | _ -> None)
    (usable_constraints ctx table)

let usable_fks ctx =
  List.filter_map
    (fun ic ->
      match ic.Icdef.body with
      | Icdef.Foreign_key { columns; ref_table; ref_columns } ->
          Some (ic, columns, ref_table, ref_columns)
      | _ -> None)
    (Database.constraints ctx.db @ ctx.ascs)

(* The key (or unique) constraint making [cols] a key of [table], if any —
   returned whole so certificates can name it as a premise. *)
let key_witness ctx table cols =
  let want = List.sort String.compare (List.map norm cols) in
  List.find_opt
    (fun ic ->
      match ic.Icdef.body with
      | Icdef.Primary_key ks | Icdef.Unique ks ->
          List.sort String.compare (List.map norm ks) = want
      | _ -> false)
    (usable_constraints ctx table)

let column_not_nullable ctx table col =
  (match Database.find_table ctx.db table with
  | Some tbl -> (
      match Schema.find_index (Table.schema tbl) col with
      | Some i ->
          not (Schema.column_at (Table.schema tbl) i).Schema.nullable
      | None -> false)
  | None -> false)
  || List.exists
       (fun ic ->
         match ic.Icdef.body with
         | Icdef.Not_null c -> norm c = norm col
         | _ -> false)
       (usable_constraints ctx table)

(* Requalify an unqualified table-local predicate onto a block alias. *)
let requalify alias p =
  Expr.map_cols_pred
    (fun r ->
      match r.Expr.rel with
      | None -> { r with Expr.rel = Some alias }
      | Some _ -> r)
    p

(* Canonical key for a column reference within a block: "alias.col", or
   None when the reference is ambiguous/unresolvable. *)
let key_of ctx block (r : Expr.col_ref) =
  match Logical.sources_of_col ctx.db block r with
  | [ s ] -> Some (norm s.Logical.alias ^ "." ^ norm r.Expr.col)
  | _ -> None

let resolve_source ctx block r =
  match Logical.sources_of_col ctx.db block r with
  | [ s ] -> Some s
  | _ -> None

let exec_pred_list block =
  List.map (fun (p : Logical.pred_item) -> p.Logical.pred)
    (Logical.executable_preds block)

(* interval currently imposed on alias.col by the executable conjuncts *)
let interval_on ctx block ~alias ~col =
  let key = norm alias ^ "." ^ norm col in
  let entries, _ =
    Interval.summarize ~key_of:(key_of ctx block) (exec_pred_list block)
  in
  match List.assoc_opt key entries with
  | Some (_, iv) -> iv
  | None -> Interval.full

(* equality bindings alias.col = const among executable conjuncts *)
let bindings_of ctx block =
  Interval.const_bindings (exec_pred_list block)
  |> List.filter_map (fun (r, v) ->
         match key_of ctx block r with
         | Some key -> Some (key, v)
         | None -> None)

let subst_with_bindings ctx block bindings p =
  Interval.subst_pred
    (fun r ->
      match key_of ctx block r with
      | Some key -> (
          match List.assoc_opt key bindings with
          | Some v -> Some (Expr.Const v)
          | None -> None)
      | None -> None)
    p

(* Every column a predicate references must be declared NOT NULL for the
   predicate to be safely *introduced* into WHERE: a CHECK constraint is
   satisfied when it evaluates to UNKNOWN on a row, but a WHERE conjunct
   would filter that row out. *)
let cols_all_not_nullable ctx block p =
  List.for_all
    (fun (r : Expr.col_ref) ->
      match resolve_source ctx block r with
      | Some s -> column_not_nullable ctx s.Logical.table r.Expr.col
      | None -> false)
    (Expr.cols_of_pred p)

(* ---- rule: unsatisfiability / union-all branch pruning ------------------ *)

(* All check statements that hold for a block's sources, requalified. *)
let implied_checks ctx (block : Logical.block) =
  List.concat_map
    (fun (s : Logical.source) ->
      List.map
        (fun (_, p) -> requalify s.Logical.alias p)
        (usable_checks ctx s.Logical.table))
    block.Logical.from

(* Prune only on contradictions anchored by a *query* predicate: a row can
   satisfy two contradictory CHECKs when their columns are NULL, but it
   cannot satisfy a query range predicate with a NULL column — so a
   query-bounded column whose combined interval is empty proves the block
   returns nothing. *)
let block_unsatisfiable ctx block =
  let kf = key_of ctx block in
  let query_preds = exec_pred_list block in
  if List.exists (fun p -> Interval.simplify_pred p = Expr.Pfalse) query_preds
  then true
  else begin
    let checks = implied_checks ctx block in
    let q_entries, _ = Interval.summarize ~key_of:kf query_preds in
    let all_entries, _ =
      Interval.summarize ~key_of:kf (query_preds @ checks)
    in
    let interval_contradiction =
      List.exists
        (fun (key, (_, iv_all)) ->
          Interval.is_empty iv_all && List.mem_assoc key q_entries)
        all_entries
    in
    (* value-set contradiction: a query equality on a column whose implied
       IN-list check excludes the constant (query equality ⇒ the column is
       non-null on qualifying rows, so the check cannot be UNKNOWN) *)
    let bindings = Interval.const_bindings query_preds in
    let value_set_contradiction =
      List.exists
        (fun check ->
          match check with
          | Expr.In_list (Expr.Col r, vs) -> (
              match kf r with
              | Some key ->
                  List.exists
                    (fun (rb, v) ->
                      kf rb = Some key
                      && not
                           (List.exists (fun v' -> Value.equal_total v v') vs))
                    bindings
              | None -> false)
          | _ -> false)
        checks
    in
    interval_contradiction || value_set_contradiction
  end

(* ---- rule: join elimination --------------------------------------------- *)

(* one pass; caller iterates to fixpoint *)
let join_elimination_step ctx applied (block : Logical.block) :
    Logical.block option =
  let exec = Logical.executable_preds block in
  (* equality predicates between two distinct aliases *)
  let eq_items =
    List.filter_map
      (fun (p : Logical.pred_item) ->
        if p.Logical.estimation_only then None
        else
          match p.Logical.pred with
          | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) -> (
              match (resolve_source ctx block a, resolve_source ctx block b)
              with
              | Some sa, Some sb when sa.Logical.alias <> sb.Logical.alias ->
                  Some (p, (sa, a.Expr.col), (sb, b.Expr.col))
              | _ -> None)
          | _ -> None)
      exec
  in
  let try_fk (fk_ic, fk_cols, ref_table, ref_cols) =
    (* all (child alias, parent alias) pairs instantiating this FK *)
    let candidates =
      List.filter
        (fun (s : Logical.source) -> norm s.Logical.table = norm fk_ic.Icdef.table)
        block.Logical.from
      |> List.concat_map (fun child ->
             List.filter_map
               (fun (s : Logical.source) ->
                 if
                   norm s.Logical.table = norm ref_table
                   && s.Logical.alias <> child.Logical.alias
                 then Some (child, s)
                 else None)
               block.Logical.from)
    in
    let try_pair (child, parent) =
      (* join predicates between exactly this pair *)
      let pair_items =
        List.filter
          (fun (_, (sa, _), (sb, _)) ->
            (sa.Logical.alias = child.Logical.alias
            && sb.Logical.alias = parent.Logical.alias)
            || (sa.Logical.alias = parent.Logical.alias
               && sb.Logical.alias = child.Logical.alias))
          eq_items
      in
      let col_pairs =
        List.map
          (fun (_, (sa, ca), (_, cb)) ->
            if sa.Logical.alias = child.Logical.alias then (norm ca, norm cb)
            else (norm cb, norm ca))
          pair_items
      in
      let fk_pairs = List.combine (List.map norm fk_cols) (List.map norm ref_cols) in
      let same_pairs =
        List.sort compare col_pairs = List.sort compare fk_pairs
      in
      let witness =
        if
          same_pairs
          && not
               (Logical.alias_used_outside ctx.db block parent.Logical.alias
                  ~except:(List.map (fun (p, _, _) -> p) pair_items))
        then key_witness ctx ref_table ref_cols
        else None
      in
      match witness with
      | Some key_ic ->
        let keep =
          List.filter
            (fun (p : Logical.pred_item) ->
              not (List.exists (fun (q, _, _) -> q == p) pair_items))
            block.Logical.preds
        in
        let not_nulls =
          List.filter_map
            (fun c ->
              if column_not_nullable ctx child.Logical.table c then None
              else
                Some
                  (Logical.introduced_pred ~rule:"join_elimination"
                     (Expr.Is_not_null
                        (Expr.Col
                           { Expr.rel = Some child.Logical.alias; col = c }))))
            fk_cols
        in
        log ~sc:fk_ic.Icdef.name ~premises:[ key_ic.Icdef.name ]
          ~delta:
            (Source_removed
               { alias = parent.Logical.alias; table = parent.Logical.table })
          applied "join_elimination" "eliminated %s (%s) via FK %s"
          parent.Logical.alias parent.Logical.table fk_ic.Icdef.name;
        Some
          {
            block with
            Logical.from =
              List.filter
                (fun (s : Logical.source) ->
                  s.Logical.alias <> parent.Logical.alias)
                block.Logical.from;
            preds = keep @ not_nulls;
          }
      | None -> None
    in
    List.find_map try_pair candidates
  in
  List.find_map try_fk (usable_fks ctx)

let join_elimination ctx applied block =
  let rec fixpoint block =
    match join_elimination_step ctx applied block with
    | Some block' -> fixpoint block'
    | None -> block
  in
  fixpoint block

(* ---- rule: equality transitivity ------------------------------------------ *)

(* Pure-logic constant propagation: [a.x = b.y ∧ b.y = v ⊢ a.x = v].
   Rows surviving the conjunction have both predicates TRUE (so both
   columns non-null), making the derived equality sound unconditionally.
   This feeds the constraint-folding rules across joins — a binding on one
   side of an equi-join becomes visible to the other side's check
   statements. *)
let equality_transitivity ctx applied (block : Logical.block) =
  let result = ref block in
  let changed = ref true in
  while !changed do
    changed := false;
    let block = !result in
    let exec = exec_pred_list block in
    let bindings = bindings_of ctx block in
    let additions = ref [] in
    List.iter
      (fun p ->
        match p with
        | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
            let try_prop src dst dst_ref =
              match (src, dst) with
              | Some ks, Some kd when not (List.mem_assoc kd bindings) -> (
                  match List.assoc_opt ks bindings with
                  | Some v ->
                      let pred =
                        Expr.Cmp (Expr.Eq, Expr.Col dst_ref, Expr.Const v)
                      in
                      if
                        (not (List.mem pred exec))
                        && not
                             (List.exists
                                (fun (it : Logical.pred_item) ->
                                  it.Logical.pred = pred)
                                !additions)
                      then begin
                        log ~delta:(Pred_added pred) applied
                          "equality_transitivity" "derived %s"
                          (Expr.to_string_pred pred);
                        additions :=
                          Logical.introduced_pred
                            ~rule:"equality_transitivity" pred
                          :: !additions
                      end
                  | None -> ())
              | _ -> ()
            in
            try_prop (key_of ctx block a) (key_of ctx block b) b;
            try_prop (key_of ctx block b) (key_of ctx block a) a
        | _ -> ())
      exec;
    if !additions <> [] then begin
      changed := true;
      result :=
        { block with Logical.preds = block.Logical.preds @ List.rev !additions }
    end
  done;
  !result

(* ---- rule: predicate introduction ---------------------------------------- *)

(* A candidate conjunct is worth introducing when it is a sargable range
   on an indexed column not already usefully bounded — the safety
   heuristic of [6]: only rewrites that open an access path. *)
let introduction_gain ctx block (c : Expr.pred) =
  match Interval.of_pred c with
  | None -> None
  | Some (r, iv) -> (
      if Interval.is_full iv then None
      else
        match resolve_source ctx block r with
        | None -> None
        | Some s -> (
            match
              Database.find_index_on_column ctx.db s.Logical.table r.Expr.col
            with
            | None -> None
            | Some _ ->
                let current =
                  interval_on ctx block ~alias:s.Logical.alias ~col:r.Expr.col
                in
                (* new interval must actually tighten the current one *)
                if Interval.contains iv current then None else Some (s, r)))

let predicate_introduction ctx applied (block : Logical.block) =
  let bindings = bindings_of ctx block in
  let existing = exec_pred_list block in
  let new_items = ref [] in
  List.iter
    (fun (s : Logical.source) ->
      List.iter
        (fun (name, check) ->
          let q = requalify s.Logical.alias check in
          let folded =
            Interval.simplify_pred (subst_with_bindings ctx block bindings q)
          in
          List.iter
            (fun c ->
              let c = Interval.normalize c in
              if
                (not (List.mem c existing))
                && cols_all_not_nullable ctx block c
                && introduction_gain ctx block c <> None
              then begin
                log ~sc:name ~delta:(Pred_added c) applied
                  "predicate_introduction" "from %s on %s: %s" name
                  s.Logical.alias (Expr.to_string_pred c);
                new_items :=
                  Logical.introduced_pred ~rule:("check:" ^ name) c
                  :: !new_items
              end)
            (Expr.conjuncts folded))
        (usable_checks ctx s.Logical.table))
    block.Logical.from;
  { block with Logical.preds = block.Logical.preds @ List.rev !new_items }

(* ---- rule: exception-table union (ASC-as-AST, paper §4.4) ---------------- *)

(* Preconditions: plain SPJ block (no aggregates / grouping / distinct /
   ordering / limit), an exception table for a source's check statement,
   and equality bindings that fold the check into a gainful sargable
   predicate.  The rewrite produces
       (block ∧ folded-check)  UNION ALL  (block with source ↦ exceptions)
   which is answer-equal for *any* data: under the bindings the folded
   check is equivalent to the check itself, so branch 1 selects exactly
   the base rows satisfying the check and branch 2 exactly the violators
   (the exception table's contents). *)
let exception_union ctx applied (block : Logical.block) : Logical.t option =
  let plain =
    (not block.Logical.distinct)
    && block.Logical.group_by = []
    && block.Logical.having = Expr.Ptrue
    && block.Logical.order_by = []
    && block.Logical.limit = None
    && List.for_all
         (function
           | Sqlfe.Ast.Aggregate _ -> false
           | Sqlfe.Ast.Star | Sqlfe.Ast.Scalar _ -> true)
         block.Logical.items
  in
  if not (plain && ctx.flags.exception_union) then None
  else
    let bindings = bindings_of ctx block in
    let try_source (s : Logical.source) =
      let infos =
        List.filter
          (fun e -> norm e.exc_base_table = norm s.Logical.table)
          ctx.exceptions
      in
      List.find_map
        (fun info ->
          let q = requalify s.Logical.alias info.exc_check in
          let folded =
            Interval.simplify_pred (subst_with_bindings ctx block bindings q)
            |> Expr.conjuncts
            |> List.map Interval.normalize
            |> Expr.conjoin
          in
          (* only worthwhile if some folded conjunct opens an index path;
             only sound if the folded statement cannot evaluate to UNKNOWN
             on a qualifying row (all remaining columns NOT NULL) *)
          let gainful =
            List.exists
              (fun c -> introduction_gain ctx block c <> None)
              (Expr.conjuncts folded)
          in
          if not (gainful && cols_all_not_nullable ctx block folded) then None
          else begin
            log ~sc:info.exc_constraint
              ~delta:
                (Union_split
                   { fast_pred = folded; exc_table = info.exc_table })
              applied "exception_union"
              "split %s via exception table %s (constraint %s)"
              s.Logical.alias info.exc_table info.exc_constraint;
            let branch1 =
              {
                block with
                Logical.preds =
                  block.Logical.preds
                  @ [
                      Logical.introduced_pred
                        ~rule:("exception_union:" ^ info.exc_constraint)
                        folded;
                    ];
              }
            in
            let branch2 =
              {
                block with
                Logical.from =
                  List.map
                    (fun (f : Logical.source) ->
                      if f.Logical.alias = s.Logical.alias then
                        { f with Logical.table = info.exc_table }
                      else f)
                    block.Logical.from;
              }
            in
            Some (Logical.Union [ Logical.Block branch1; Logical.Block branch2 ])
          end)
        infos
    in
    List.find_map try_source block.Logical.from

(* ---- rule: join-hole range trimming -------------------------------------- *)

let float_of_value v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Date d -> Some (float_of_int d)
  | Value.Null | Value.String _ | Value.Bool _ -> None

let value_of_float ~like x =
  match like with
  | Value.TInt -> Value.Int (int_of_float (Float.round x))
  | Value.TDate -> Value.Date (int_of_float (Float.round x))
  | _ -> Value.Float x

let column_dtype ctx table col =
  match Database.find_table ctx.db table with
  | None -> Value.TFloat
  | Some tbl -> (
      let schema = Table.schema tbl in
      match Schema.find_index schema col with
      | Some i -> (Schema.column_at schema i).Schema.dtype
      | None -> Value.TFloat)

(* position of interval endpoints in float space; None when unbounded or
   non-numeric *)
let endpoint_pos (e : Interval.endpoint option) =
  match e with
  | None -> None
  | Some { Interval.v; _ } -> float_of_value v

(* query interval [iv] lies within the hole's [lo, hi) span *)
let covered_by iv ~lo ~hi =
  match (endpoint_pos iv.Interval.lo, endpoint_pos iv.Interval.hi) with
  | Some l, Some h -> l >= lo && h < hi
  | _ -> false

(* Trim [iv] on the other axis by removing the hole span [lo, hi).
   Returns the tightened interval if it is strictly tighter. *)
let trim_interval ~dtype iv ~lo ~hi =
  let lo_pos = endpoint_pos iv.Interval.lo in
  let hi_pos = endpoint_pos iv.Interval.hi in
  match (lo_pos, hi_pos) with
  | Some l, Some h when l >= lo && h < hi ->
      (* entire interval inside the hole: empty result *)
      Some `Empty
  | _ ->
      let tightened_lo =
        match lo_pos with
        | Some l when l >= lo && l < hi ->
            (* raise the lower bound to the hole's upper edge *)
            let v =
              match dtype with
              | Value.TInt | Value.TDate ->
                  value_of_float ~like:dtype (Float.ceil hi)
              | _ -> value_of_float ~like:dtype hi
            in
            Some { Interval.v; incl = true }
        | _ -> None
      in
      let tightened_hi =
        match hi_pos with
        | Some h when h > lo && h < hi ->
            (* lower the upper bound below the hole's lower edge *)
            let v, incl =
              match dtype with
              | Value.TInt | Value.TDate ->
                  let x =
                    if Float.is_integer lo then lo -. 1.0
                    else Float.of_int (int_of_float (Float.floor lo))
                  in
                  (value_of_float ~like:dtype x, true)
              | _ -> (value_of_float ~like:dtype lo, false)
            in
            Some { Interval.v; incl }
        | _ -> None
      in
      if tightened_lo = None && tightened_hi = None then None
      else
        Some
          (`Tightened
            {
              Interval.lo =
                (match tightened_lo with
                | Some e -> Some e
                | None -> iv.Interval.lo);
              hi =
                (match tightened_hi with
                | Some e -> Some e
                | None -> iv.Interval.hi);
            })

let hole_trimming ctx applied (block : Logical.block) =
  let result = ref block in
  let falsified = ref false in
  List.iter
    (fun (nh : named_holes) ->
      let h = nh.holes in
      let h_premises = Option.to_list nh.holes_sc in
      if not !falsified then begin
        let block = !result in
        let find_src table =
          List.find_opt
            (fun (s : Logical.source) -> norm s.Logical.table = norm table)
            block.Logical.from
        in
        match (find_src h.Mining.Join_holes.left_table,
               find_src h.Mining.Join_holes.right_table) with
        | Some sl, Some sr
          when column_not_nullable ctx sl.Logical.table
                 h.Mining.Join_holes.left_col
               && column_not_nullable ctx sr.Logical.table
                    h.Mining.Join_holes.right_col ->
            (* the hole's join path must be present; NULL-able hole columns
               are unsafe to trim (a joined row with a NULL coordinate is
               not a mined point, yet a range filter would drop it) *)
            let joined =
              List.exists
                (fun (p : Logical.pred_item) ->
                  match p.Logical.pred with
                  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
                      let is_pair x y =
                        (match resolve_source ctx block x with
                        | Some s -> s.Logical.alias = sl.Logical.alias
                        | None -> false)
                        && norm x.Expr.col = norm h.Mining.Join_holes.join_left
                        && (match resolve_source ctx block y with
                           | Some s -> s.Logical.alias = sr.Logical.alias
                           | None -> false)
                        && norm y.Expr.col = norm h.Mining.Join_holes.join_right
                      in
                      is_pair a b || is_pair b a
                  | _ -> false)
                (Logical.executable_preds block)
            in
            if joined then begin
              let ia =
                interval_on ctx block ~alias:sl.Logical.alias
                  ~col:h.Mining.Join_holes.left_col
              and ib =
                interval_on ctx block ~alias:sr.Logical.alias
                  ~col:h.Mining.Join_holes.right_col
              in
              List.iter
                (fun (r : Mining.Join_holes.rect) ->
                  if not !falsified then begin
                    (* A-covered: trim B *)
                    (if covered_by ia ~lo:r.Mining.Join_holes.a_lo
                          ~hi:r.Mining.Join_holes.a_hi then
                       let dtype =
                         column_dtype ctx sr.Logical.table
                           h.Mining.Join_holes.right_col
                       in
                       match
                         trim_interval ~dtype ib ~lo:r.Mining.Join_holes.b_lo
                           ~hi:r.Mining.Join_holes.b_hi
                       with
                       | Some `Empty ->
                           log ~premises:h_premises ~delta:Block_falsified
                             applied "hole_trimming"
                             "query range falls entirely in a hole: empty";
                           falsified := true
                       | Some (`Tightened iv') ->
                           let ref_ =
                             {
                               Expr.rel = Some sr.Logical.alias;
                               col = h.Mining.Join_holes.right_col;
                             }
                           in
                           let tp = Interval.to_pred ref_ iv' in
                           log ~premises:h_premises ~delta:(Pred_added tp)
                             applied "hole_trimming" "tightened %s.%s"
                             sr.Logical.alias h.Mining.Join_holes.right_col;
                           result :=
                             {
                               !result with
                               Logical.preds =
                                 !result.Logical.preds
                                 @ [
                                     Logical.introduced_pred
                                       ~rule:"hole_trimming" tp;
                                   ];
                             }
                       | None -> ());
                    (* B-covered: trim A *)
                    if
                      (not !falsified)
                      && covered_by ib ~lo:r.Mining.Join_holes.b_lo
                           ~hi:r.Mining.Join_holes.b_hi
                    then
                      let dtype =
                        column_dtype ctx sl.Logical.table
                          h.Mining.Join_holes.left_col
                      in
                      match
                        trim_interval ~dtype ia ~lo:r.Mining.Join_holes.a_lo
                          ~hi:r.Mining.Join_holes.a_hi
                      with
                      | Some `Empty ->
                          log ~premises:h_premises ~delta:Block_falsified
                            applied "hole_trimming"
                            "query range falls entirely in a hole: empty";
                          falsified := true
                      | Some (`Tightened iv') ->
                          let ref_ =
                            {
                              Expr.rel = Some sl.Logical.alias;
                              col = h.Mining.Join_holes.left_col;
                            }
                          in
                          let tp = Interval.to_pred ref_ iv' in
                          log ~premises:h_premises ~delta:(Pred_added tp)
                            applied "hole_trimming" "tightened %s.%s"
                            sl.Logical.alias h.Mining.Join_holes.left_col;
                          result :=
                            {
                              !result with
                              Logical.preds =
                                !result.Logical.preds
                                @ [
                                    Logical.introduced_pred
                                      ~rule:"hole_trimming" tp;
                                  ];
                            }
                      | None -> ()
                  end)
                h.Mining.Join_holes.rects
            end
        | _ -> ()
      end)
    ctx.holes;
  if !falsified then
    {
      !result with
      Logical.preds =
        !result.Logical.preds @ [ Logical.introduced_pred ~rule:"hole_trimming" Expr.Pfalse ];
    }
  else !result

(* ---- rule: FD-based group-by / order-by simplification ------------------- *)

(* FDs usable for a table: mined FDs plus key constraints (a key determines
   every column). *)
let fds_for ctx table =
  let mined =
    List.filter
      (fun (nf : named_fd) ->
        norm nf.fd.Mining.Fd_mine.table = norm table)
      ctx.fds
    |> List.map (fun nf ->
           ( List.map norm nf.fd.Mining.Fd_mine.lhs,
             norm nf.fd.Mining.Fd_mine.rhs ))
  in
  let from_keys =
    match Database.find_table ctx.db table with
    | None -> []
    | Some tbl ->
        let all = List.map norm (Schema.column_names (Table.schema tbl)) in
        List.concat_map
          (fun ic ->
            match ic.Icdef.body with
            | Icdef.Primary_key ks | Icdef.Unique ks ->
                let ks = List.map norm ks in
                List.filter_map
                  (fun c -> if List.mem c ks then None else Some (ks, c))
                  all
            | _ -> [])
          (usable_constraints ctx table)
  in
  mined @ from_keys

(* Names of the catalog FDs backing a simplification on [table] — a
   table-scoped over-approximation of the exact closure trace (declared
   keys also feed the closure but need no guard, being enforced). *)
let fd_premises ctx table =
  List.filter_map
    (fun (nf : named_fd) ->
      if norm nf.fd.Mining.Fd_mine.table = norm table then nf.fd_sc else None)
    ctx.fds

let fd_closure fds start =
  let closure = ref start in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (lhs, rhs) ->
        if
          (not (List.mem rhs !closure))
          && List.for_all (fun c -> List.mem c !closure) lhs
        then begin
          closure := rhs :: !closure;
          changed := true
        end)
      fds
  done;
  !closure

(* columns of [alias] bound to constants by equality predicates *)
let const_cols ctx block alias =
  Interval.const_bindings (exec_pred_list block)
  |> List.filter_map (fun (r, _) ->
         match resolve_source ctx block r with
         | Some s when norm s.Logical.alias = norm alias ->
             Some (norm r.Expr.col)
         | _ -> None)

let fd_simplification ctx applied (block : Logical.block) =
  (* ORDER BY: drop keys functionally determined by earlier keys (or by
     constants) *)
  let determined : (string, string list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (s : Logical.source) ->
      Hashtbl.replace determined (norm s.Logical.alias)
        (const_cols ctx block s.Logical.alias))
    block.Logical.from;
  let keep_order =
    List.filter
      (fun (o : Sqlfe.Ast.order_item) ->
        match o.Sqlfe.Ast.key with
        | Expr.Col r -> (
            match resolve_source ctx block r with
            | Some s ->
                let a = norm s.Logical.alias in
                let known = Option.value (Hashtbl.find_opt determined a) ~default:[] in
                let closure =
                  fd_closure (fds_for ctx s.Logical.table) known
                in
                if List.mem (norm r.Expr.col) closure then begin
                  log
                    ~premises:(fd_premises ctx s.Logical.table)
                    ~delta:
                      (Order_key_dropped
                         { alias = s.Logical.alias; col = r.Expr.col })
                    applied "fd_simplification"
                    "dropped redundant ORDER BY key %s.%s" s.Logical.alias
                    r.Expr.col;
                  false
                end
                else begin
                  Hashtbl.replace determined a (norm r.Expr.col :: known);
                  true
                end
            | None -> true)
        | _ -> true)
      block.Logical.order_by
  in
  (* GROUP BY: drop keys determined by the remaining keys + constants *)
  let group = ref block.Logical.group_by in
  let items = ref block.Logical.items in
  let changed = ref true in
  while !changed do
    changed := false;
    let try_drop k =
      (* never drop the last key: an empty GROUP BY turns a grouped query
         into a global aggregate, which yields a row even on empty input *)
      List.length !group > 1
      &&
      match k with
      | Expr.Col r -> (
          match resolve_source ctx block r with
          | Some s ->
              let others =
                List.filter_map
                  (fun k' ->
                    if k' == k then None
                    else
                      match k' with
                      | Expr.Col r' -> (
                          match resolve_source ctx block r' with
                          | Some s' when s'.Logical.alias = s.Logical.alias ->
                              Some (norm r'.Expr.col)
                          | _ -> None)
                      | _ -> None)
                  !group
              in
              let known = others @ const_cols ctx block s.Logical.alias in
              let closure = fd_closure (fds_for ctx s.Logical.table) known in
              List.mem (norm r.Expr.col) closure
          | None -> false)
      | _ -> false
    in
    match List.find_opt try_drop !group with
    | Some k ->
        changed := true;
        group := List.filter (fun k' -> not (k' == k)) !group;
        let k_premises =
          match k with
          | Expr.Col r -> (
              match resolve_source ctx block r with
              | Some s -> fd_premises ctx s.Logical.table
              | None -> [])
          | _ -> []
        in
        (* a select item equal to the dropped key becomes MIN(key): the FD
           guarantees a single value per group, so MIN is value-preserving *)
        items :=
          List.map
            (fun item ->
              match item with
              | Sqlfe.Ast.Scalar (e, alias) when e = k ->
                  let name =
                    match alias with
                    | Some a -> Some a
                    | None -> (
                        match e with
                        | Expr.Col r -> Some r.Expr.col
                        | _ -> None)
                  in
                  log ~premises:k_premises
                    ~delta:(Group_key_dropped (Fmt.str "%a" Expr.pp e))
                    applied "fd_simplification"
                    "GROUP BY key %s dropped; select item rewritten as MIN"
                    (Fmt.str "%a" Expr.pp e);
                  Sqlfe.Ast.Aggregate (Sqlfe.Ast.Min, Some e, name)
              | item -> item)
            !items
    | None -> ()
  done;
  if
    List.length keep_order <> List.length block.Logical.order_by
    || List.length !group <> List.length block.Logical.group_by
  then
    { block with Logical.order_by = keep_order; group_by = !group;
      items = !items }
  else block

(* ---- rule: twinning from SSCs (estimation only) --------------------------- *)

(* With [outward] the endpoints round away from the interval (floor the
   lower, ceil the upper) so the image is a superset — mandatory when the
   derived predicate will actually execute; estimation-only twins round to
   nearest. *)
let typed_endpoint ~dtype ~outward side x =
  let x =
    if not outward then x
    else
      match dtype with
      | Value.TInt | Value.TDate -> (
          match side with `Lo -> Float.floor x | `Hi -> Float.ceil x)
      | _ -> x
  in
  Some { Interval.v = value_of_float ~like:dtype x; incl = true }

let shift_interval ?(outward = false) iv ~flo ~fhi ~dtype =
  (* map interval [iv] through x ↦ [x + flo, x + fhi] (monotone band) *)
  let map_ep side delta (e : Interval.endpoint option) =
    match e with
    | None -> None
    | Some { Interval.v; _ } -> (
        match float_of_value v with
        | None -> None
        | Some x -> typed_endpoint ~dtype ~outward side (x +. delta))
  in
  {
    Interval.lo = map_ep `Lo flo iv.Interval.lo;
    hi = map_ep `Hi fhi iv.Interval.hi;
  }

let linear_interval ?(outward = false) iv ~k ~b ~eps ~dtype =
  (* image of interval under x ↦ k·x + b ± eps *)
  let pos e =
    match e with
    | None -> None
    | Some { Interval.v; _ } -> float_of_value v
  in
  let lo = pos iv.Interval.lo and hi = pos iv.Interval.hi in
  let ends =
    List.filter_map
      (fun x -> Option.map (fun x -> (k *. x) +. b) x)
      [ lo; hi ]
  in
  match ends with
  | [] -> Interval.full
  | _ ->
      let lo_img = List.fold_left min (List.hd ends) ends -. eps in
      let hi_img = List.fold_left max (List.hd ends) ends +. eps in
      let bounded_lo = (if k >= 0.0 then lo else hi) <> None in
      let bounded_hi = (if k >= 0.0 then hi else lo) <> None in
      {
        Interval.lo =
          (if bounded_lo then typed_endpoint ~dtype ~outward `Lo lo_img
           else None);
        hi =
          (if bounded_hi then typed_endpoint ~dtype ~outward `Hi hi_img
           else None);
      }

let twinning ctx applied (block : Logical.block) =
  let twins = ref [] in
  let add_twin ~sc ~confidence ~alias ~target_col ~source_col iv =
    if not (Interval.is_full iv || Interval.is_empty iv) then begin
      let r = { Expr.rel = Some alias; col = target_col } in
      let pred = Interval.to_pred r iv in
      log ~sc
        ~delta:(Pred_twinned { pred; confidence })
        applied "twinning" "%s: twinned %s.%s from %s.%s (conf %.2f)" sc alias
        target_col alias source_col confidence;
      twins :=
        Logical.twin_pred ~sc ~confidence
          ~replaces:{ Expr.rel = Some alias; col = source_col }
          pred
        :: !twins
    end
  in
  List.iter
    (fun (ssc : ssc) ->
      match ssc.shape with
      | Diff_band (d, band) ->
          List.iter
            (fun (s : Logical.source) ->
              if norm s.Logical.table = norm d.Mining.Diff_band.table then begin
                let alias = s.Logical.alias in
                let col_hi = d.Mining.Diff_band.col_hi
                and col_lo = d.Mining.Diff_band.col_lo in
                let ih = interval_on ctx block ~alias ~col:col_hi
                and il = interval_on ctx block ~alias ~col:col_lo in
                let dmin = band.Mining.Diff_band.d_min
                and dmax = band.Mining.Diff_band.d_max in
                (* a twin only helps when predicates exist on BOTH columns
                   (the paper's case: reduce "range predicates on two
                   columns to a pair of range predicates on one column") *)
                if not (Interval.is_full ih || Interval.is_full il) then
                  (* hi ∈ Ih  ⇒  lo = hi − diff ∈ [Ih.lo − dmax, Ih.hi − dmin] *)
                  add_twin ~sc:ssc.ssc_name
                    ~confidence:band.Mining.Diff_band.confidence ~alias
                    ~target_col:col_lo ~source_col:col_hi
                    (shift_interval ih ~flo:(-.dmax) ~fhi:(-.dmin)
                       ~dtype:(column_dtype ctx s.Logical.table col_lo))
              end)
            block.Logical.from
      | Corr_band (c, band) ->
          List.iter
            (fun (s : Logical.source) ->
              if norm s.Logical.table = norm c.Mining.Correlation.table then begin
                let alias = s.Logical.alias in
                let col_a = c.Mining.Correlation.col_a
                and col_b = c.Mining.Correlation.col_b in
                let ib = interval_on ctx block ~alias ~col:col_b in
                let ia = interval_on ctx block ~alias ~col:col_a in
                let k = c.Mining.Correlation.k and b0 = c.Mining.Correlation.b in
                let eps = band.Mining.Correlation.eps in
                (* both columns must carry predicates (see diff bands) *)
                if not (Interval.is_full ib || Interval.is_full ia) then
                  (* B ∈ Ib  ⇒  A ∈ k·Ib + b ± ε *)
                  add_twin ~sc:ssc.ssc_name
                    ~confidence:band.Mining.Correlation.confidence ~alias
                    ~target_col:col_a ~source_col:col_b
                    (linear_interval ib ~k ~b:b0 ~eps
                       ~dtype:(column_dtype ctx s.Logical.table col_a))
              end)
            block.Logical.from)
    ctx.sscs;
  { block with Logical.preds = block.Logical.preds @ List.rev !twins }

(* ---- rule: executable range propagation through valid bands -------------- *)

(* The generic predicate-introduction rule folds a check statement against
   *equality* bindings.  When the valid statement is a typed band
   (difference or linear), a plain *range* predicate on one column also
   implies a range on the other: propagate it, with outward rounding so
   the executable predicate is a superset of the implied image. *)
let shape_introduction ctx applied (block : Logical.block) =
  let existing = exec_pred_list block in
  let new_items = ref [] in
  let try_add ~sc ~rule ~alias ~target_table ~target_col iv =
    if not (Interval.is_full iv || Interval.is_empty iv) then begin
      let r = { Expr.rel = Some alias; col = target_col } in
      let pred = Interval.to_pred r iv in
      if
        (not (List.mem pred existing))
        && column_not_nullable ctx target_table target_col
        && introduction_gain ctx block pred <> None
        && not
             (List.exists
                (fun (it : Logical.pred_item) -> it.Logical.pred = pred)
                !new_items)
      then begin
        log ~sc ~delta:(Pred_added pred) applied "predicate_introduction"
          "range propagation via %s: %s" rule (Expr.to_string_pred pred);
        new_items := Logical.introduced_pred ~rule pred :: !new_items
      end
    end
  in
  List.iter
    (fun (ssc : ssc) ->
      match ssc.shape with
      | Diff_band (d, band) ->
          List.iter
            (fun (s : Logical.source) ->
              if norm s.Logical.table = norm d.Mining.Diff_band.table then begin
                let alias = s.Logical.alias in
                let col_hi = d.Mining.Diff_band.col_hi
                and col_lo = d.Mining.Diff_band.col_lo in
                let ih = interval_on ctx block ~alias ~col:col_hi
                and il = interval_on ctx block ~alias ~col:col_lo in
                let dmin = band.Mining.Diff_band.d_min
                and dmax = band.Mining.Diff_band.d_max in
                if not (Interval.is_full ih) then
                  try_add ~sc:ssc.ssc_name ~rule:("band:" ^ ssc.ssc_name)
                    ~alias
                    ~target_table:s.Logical.table ~target_col:col_lo
                    (shift_interval ~outward:true ih ~flo:(-.dmax)
                       ~fhi:(-.dmin)
                       ~dtype:(column_dtype ctx s.Logical.table col_lo));
                if not (Interval.is_full il) then
                  try_add ~sc:ssc.ssc_name ~rule:("band:" ^ ssc.ssc_name)
                    ~alias
                    ~target_table:s.Logical.table ~target_col:col_hi
                    (shift_interval ~outward:true il ~flo:dmin ~fhi:dmax
                       ~dtype:(column_dtype ctx s.Logical.table col_hi))
              end)
            block.Logical.from
      | Corr_band (c, band) ->
          List.iter
            (fun (s : Logical.source) ->
              if norm s.Logical.table = norm c.Mining.Correlation.table
              then begin
                let alias = s.Logical.alias in
                let col_a = c.Mining.Correlation.col_a
                and col_b = c.Mining.Correlation.col_b in
                let ia = interval_on ctx block ~alias ~col:col_a
                and ib = interval_on ctx block ~alias ~col:col_b in
                let k = c.Mining.Correlation.k
                and b0 = c.Mining.Correlation.b in
                let eps = band.Mining.Correlation.eps in
                if not (Interval.is_full ib) then
                  try_add ~sc:ssc.ssc_name ~rule:("corr:" ^ ssc.ssc_name)
                    ~alias
                    ~target_table:s.Logical.table ~target_col:col_a
                    (linear_interval ~outward:true ib ~k ~b:b0 ~eps
                       ~dtype:(column_dtype ctx s.Logical.table col_a));
                if (not (Interval.is_full ia)) && Float.abs k > 1e-12 then
                  try_add ~sc:ssc.ssc_name ~rule:("corr:" ^ ssc.ssc_name)
                    ~alias
                    ~target_table:s.Logical.table ~target_col:col_b
                    (linear_interval ~outward:true ia ~k:(1.0 /. k)
                       ~b:(-.b0 /. k) ~eps:(eps /. Float.abs k)
                       ~dtype:(column_dtype ctx s.Logical.table col_b))
              end)
            block.Logical.from)
    ctx.asc_shapes;
  { block with Logical.preds = block.Logical.preds @ List.rev !new_items }

(* ---- driver ---------------------------------------------------------------- *)

(* Names of every usable check on a block's sources: the (superset of)
   premises behind an unsatisfiability proof — a premise superset is
   sound for guarding purposes. *)
let check_premises ctx (block : Logical.block) =
  List.concat_map
    (fun (s : Logical.source) ->
      List.map fst (usable_checks ctx s.Logical.table))
    block.Logical.from

let falsify block =
  {
    block with
    Logical.preds =
      block.Logical.preds
      @ [ Logical.introduced_pred ~rule:"unsatisfiable" Expr.Pfalse ];
  }

(* ---- rule: partition pruning -------------------------------------------- *)

(* Eliminate partitions of a partitioned source whose partition
   constraint — the routing bounds, optionally tightened by valid
   partition-domain SCs — contradicts the block's query predicates.  The
   same NULL discipline as [block_unsatisfiable] applies: a contradiction
   only counts when anchored by a query predicate on the same column,
   because a query range or equality predicate excludes NULL rows while a
   partition constraint (CHECK semantics) passes on them.  That anchoring
   is also what makes it sound to strip the IS NULL arm that segment 0 of
   a range partitioning carries (NULLs route there). *)

let rec strip_null_arms = function
  | Expr.Or (p, Expr.Is_null _) -> strip_null_arms p
  | p -> p

let partition_scs_of ctx (s : Logical.source) i =
  List.filter
    (fun p -> norm p.part_table = norm s.Logical.table && p.part_index = i)
    ctx.parts

let partition_contradicts ctx block (s : Logical.source) part_preds =
  let kf = key_of ctx block in
  let query_preds = exec_pred_list block in
  let part_preds = List.map (requalify s.Logical.alias) part_preds in
  let q_entries, _ = Interval.summarize ~key_of:kf query_preds in
  let all_entries, _ =
    Interval.summarize ~key_of:kf (query_preds @ part_preds)
  in
  List.exists
    (fun (key, (_, iv)) ->
      Interval.is_empty iv && List.mem_assoc key q_entries)
    all_entries

(* A hash partition survives only the bucket an equality on the partition
   column routes to — routing-hard, so such a prune needs no SC premise. *)
let hash_exclusion ctx block (s : Logical.source) part i =
  match Partition.spec part with
  | Partition.Range _ -> false
  | Partition.Hash _ ->
      let col = Partition.column part in
      let want =
        match key_of ctx block { Expr.rel = Some s.Logical.alias; col } with
        | Some key -> Some key
        | None -> None
      in
      (match want with
      | None -> false
      | Some key ->
          Interval.const_bindings (exec_pred_list block)
          |> List.exists (fun (r, v) ->
                 key_of ctx block r = Some key
                 && Partition.route_value part v <> i))

let partition_pruning_step ctx applied (block : Logical.block) =
  let prune_source (s : Logical.source) =
    match Database.partitioning ctx.db s.Logical.table with
    | None -> s
    | Some part ->
        let candidates =
          match s.Logical.partitions with
          | Some ps -> ps
          | None -> List.init (Partition.count part) Fun.id
        in
        let survivors =
          List.filter
            (fun i ->
              let hard = strip_null_arms (Partition.constraint_pred part i) in
              if
                hash_exclusion ctx block s part i
                || partition_contradicts ctx block s [ hard ]
              then begin
                log ~delta:(Partition_pruned
                              { table = s.Logical.table;
                                alias = s.Logical.alias; partition = i })
                  applied "partition_pruning"
                  "partition %d of %s contradicts the query predicates" i
                  s.Logical.table;
                false
              end
              else
                let scs = partition_scs_of ctx s i in
                let sc_preds = List.map (fun p -> p.part_pred) scs in
                if
                  sc_preds <> []
                  && partition_contradicts ctx block s (hard :: sc_preds)
                then begin
                  let names = List.filter_map (fun p -> p.part_sc_name) scs in
                  log
                    ?sc:(match names with n :: _ -> Some n | [] -> None)
                    ~premises:names
                    ~delta:(Partition_pruned
                              { table = s.Logical.table;
                                alias = s.Logical.alias; partition = i })
                    applied "partition_pruning"
                    "partition %d of %s: domain SC contradicts the query \
                     predicates"
                    i s.Logical.table;
                  false
                end
                else true)
            candidates
        in
        if List.length survivors < List.length candidates then
          { s with Logical.partitions = Some survivors }
        else s
  in
  { block with Logical.from = List.map prune_source block.Logical.from }

let rewrite_block_phase1 ctx applied block =
  let block =
    if ctx.flags.unionall_pruning && block_unsatisfiable ctx block then begin
      log
        ~premises:(check_premises ctx block)
        ~delta:Block_falsified applied "unsatisfiable"
        "block contradicts its constraints";
      falsify block
    end
    else block
  in
  let block =
    if ctx.flags.partition_pruning then partition_pruning_step ctx applied block
    else block
  in
  let block =
    if ctx.flags.join_elimination then join_elimination ctx applied block
    else block
  in
  let block =
    if ctx.flags.predicate_introduction then
      block
      |> equality_transitivity ctx applied
      |> predicate_introduction ctx applied
      |> shape_introduction ctx applied
    else block
  in
  block

let rewrite_block_phase3 ctx applied block =
  let block =
    if ctx.flags.hole_trimming then hole_trimming ctx applied block else block
  in
  let block =
    if ctx.flags.fd_simplification then fd_simplification ctx applied block
    else block
  in
  let block = if ctx.flags.twinning then twinning ctx applied block else block in
  block

let rec rewrite_query ctx applied (q : Logical.t) : Logical.t =
  match q with
  | Logical.Union branches ->
      let kept =
        List.filter
          (fun b ->
            match b with
            | Logical.Block blk ->
                if ctx.flags.unionall_pruning && block_unsatisfiable ctx blk
                then begin
                  log
                    ~premises:(check_premises ctx blk)
                    ~delta:Branch_pruned applied "unionall_pruning"
                    "pruned a branch";
                  false
                end
                else true
            | Logical.Union _ -> true)
          branches
      in
      let kept = match kept with [] -> [ List.hd branches ] | l -> l in
      Logical.Union (List.map (rewrite_query ctx applied) kept)
  | Logical.Block block -> (
      let block = rewrite_block_phase1 ctx applied block in
      match exception_union ctx applied block with
      | Some (Logical.Union branches) ->
          Logical.Union
            (List.map
               (function
                 | Logical.Block b ->
                     Logical.Block (rewrite_block_phase3 ctx applied b)
                 | q -> q)
               branches)
      | Some q -> q
      | None -> Logical.Block (rewrite_block_phase3 ctx applied block))

let rewrite ctx (q : Logical.t) : Logical.t * applied list =
  let applied = ref [] in
  let q' = rewrite_query ctx applied q in
  (q', List.rev !applied)

let pp_applied ppf a = Fmt.pf ppf "%s: %s" a.rule a.detail

let pp_delta ppf = function
  | Source_removed { alias; table } ->
      Fmt.pf ppf "source %s (%s) removed" alias table
  | Pred_added p -> Fmt.pf ppf "added %s" (Expr.to_string_pred p)
  | Pred_twinned { pred; confidence } ->
      Fmt.pf ppf "twin %s (conf %.2f)" (Expr.to_string_pred pred) confidence
  | Order_key_dropped { alias; col } ->
      Fmt.pf ppf "ORDER BY key %s.%s dropped" alias col
  | Group_key_dropped k -> Fmt.pf ppf "GROUP BY key %s dropped" k
  | Union_split { fast_pred; exc_table } ->
      Fmt.pf ppf "split into (fast: %s) UNION ALL (exceptions: %s)"
        (Expr.to_string_pred fast_pred) exc_table
  | Branch_pruned -> Fmt.pf ppf "UNION ALL branch pruned"
  | Block_falsified -> Fmt.pf ppf "block proven empty"
  | Partition_pruned { table; alias; partition } ->
      Fmt.pf ppf "partition %d of %s (%s) pruned" partition table alias
  | Index_access { index; table; alias } ->
      Fmt.pf ppf "%s (%s) answered from index %s alone" alias table index
