(* Logical query representation: select-project-join blocks with decorated
   predicates, possibly unioned.

   Every conjunct carries its provenance.  [estimation_only] predicates —
   the paper's *twinned* predicates (§5.1) — are visible to the
   cardinality model but are never compiled into the physical plan, and
   carry the SSC's confidence.  [Introduced] predicates come from
   semantics-preserving rewrites (valid ASCs / ICs) and *are* executed. *)

open Rel

type origin =
  | User
  | Introduced of string (* rule or soft-constraint name *)
  | Twin of string (* SSC name; estimation-only *)

type pred_item = {
  pred : Expr.pred;
  origin : origin;
  estimation_only : bool;
  confidence : float; (* < 1.0 only for twins *)
  replaces : Expr.col_ref option;
    (* for a twin: the column whose user predicates it twins with; the
       blended estimate drops that column's range predicates when the
       twin is taken (paper: "use either the original predicate or the
       new predicate") *)
}

let user_pred pred =
  { pred; origin = User; estimation_only = false; confidence = 1.0;
    replaces = None }

let introduced_pred ~rule pred =
  { pred; origin = Introduced rule; estimation_only = false;
    confidence = 1.0; replaces = None }

let twin_pred ~sc ~confidence ?replaces pred =
  { pred; origin = Twin sc; estimation_only = true; confidence; replaces }

type source = {
  table : string;
  alias : string;
  partitions : int list option;
      (* surviving partitions of a partitioned table; [None] = all *)
}

type block = {
  distinct : bool;
  items : Sqlfe.Ast.select_item list;
  from : source list;
  preds : pred_item list;
  group_by : Expr.t list;
  having : Expr.pred; (* over the grouped output, by output names *)
  order_by : Sqlfe.Ast.order_item list;
  limit : int option;
}

type t = Block of block | Union of t list

exception Unsupported of string

let unsupported fmt =
  Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* ---- construction from the AST ---------------------------------------- *)

let of_select (s : Sqlfe.Ast.select) : block =
  let from =
    List.map
      (fun (r : Sqlfe.Ast.table_ref) ->
        { table = r.table;
          alias = Option.value r.alias ~default:r.table;
          partitions = None })
      s.from
  in
  (if from = [] then unsupported "query with empty FROM");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun src ->
      let a = String.lowercase_ascii src.alias in
      if Hashtbl.mem seen a then
        unsupported "duplicate table alias %s" src.alias;
      Hashtbl.add seen a ())
    from;
  {
    distinct = s.distinct;
    items = s.items;
    from;
    preds = List.map user_pred (Expr.conjuncts s.where);
    group_by = s.group_by;
    having = s.having;
    order_by = s.order_by;
    limit = s.limit;
  }

let rec of_query (q : Sqlfe.Ast.query) : t =
  match q with
  | Sqlfe.Ast.Select s -> Block (of_select s)
  | Sqlfe.Ast.Union_all qs -> Union (List.map of_query qs)

(* ---- conversion back to the AST (for display; twins are kept out of
       the executable predicate) ------------------------------------------ *)

let executable_preds block =
  List.filter (fun p -> not p.estimation_only) block.preds

let estimation_preds block =
  List.filter (fun p -> p.estimation_only) block.preds

let block_to_select (b : block) : Sqlfe.Ast.select =
  {
    Sqlfe.Ast.distinct = b.distinct;
    items = b.items;
    from =
      List.map
        (fun s ->
          {
            Sqlfe.Ast.table = s.table;
            alias = (if s.alias = s.table then None else Some s.alias);
          })
        b.from;
    where = Expr.conjoin (List.map (fun p -> p.pred) (executable_preds b));
    group_by = b.group_by;
    having = b.having;
    order_by = b.order_by;
    limit = b.limit;
  }

let rec to_query = function
  | Block b -> Sqlfe.Ast.Select (block_to_select b)
  | Union ts -> Sqlfe.Ast.Union_all (List.map to_query ts)

(* ---- analysis helpers -------------------------------------------------- *)


let norm = String.lowercase_ascii

let find_source block alias =
  List.find_opt (fun s -> norm s.alias = norm alias) block.from

(* Which sources can a column reference belong to?  Unqualified references
   are matched against the table schemas. *)
let sources_of_col db block (r : Expr.col_ref) : source list =
  match r.Expr.rel with
  | Some q -> (
      match find_source block q with Some s -> [ s ] | None -> [])
  | None ->
      List.filter
        (fun s ->
          match Database.find_table db s.table with
          | None -> false
          | Some tbl -> Schema.find_index (Table.schema tbl) r.Expr.col <> None)
        block.from

(* All column references used by the block outside of [preds] —
   select items (Star expands to "every column of every source"),
   group by, order by. *)
let cols_outside_preds block : [ `Star | `Cols of Expr.col_ref list ] =
  let has_star =
    List.exists (fun i -> i = Sqlfe.Ast.Star) block.items
  in
  if has_star then `Star
  else
    let of_item = function
      | Sqlfe.Ast.Star -> []
      | Sqlfe.Ast.Scalar (e, _) -> Expr.cols_of_expr e
      | Sqlfe.Ast.Aggregate (_, arg, _) ->
          Option.value (Option.map Expr.cols_of_expr arg) ~default:[]
    in
    `Cols
      (List.concat_map of_item block.items
      @ List.concat_map Expr.cols_of_expr block.group_by
      @ List.concat_map
          (fun (o : Sqlfe.Ast.order_item) -> Expr.cols_of_expr o.key)
          block.order_by)

(* Does the block reference [alias] anywhere besides the predicates in
   [except]?  Used by join elimination. *)
let alias_used_outside db block alias ~except =
  let touches_alias cols =
    List.exists
      (fun r ->
        List.exists
          (fun s -> norm s.alias = norm alias)
          (sources_of_col db block r))
      cols
  in
  (match cols_outside_preds block with
  | `Star -> List.length block.from > 1 (* Star uses every source *)
  | `Cols cols -> touches_alias cols)
  ||
  List.exists
    (fun p ->
      (not (List.memq p except)) && touches_alias (Expr.cols_of_pred p.pred))
    block.preds

let pp_pred_item ppf p =
  let tag =
    match p.origin with
    | User -> ""
    | Introduced rule -> Fmt.str " [introduced:%s]" rule
    | Twin sc -> Fmt.str " [twin:%s conf=%.2f]" sc p.confidence
  in
  Fmt.pf ppf "%a%s" Expr.pp_pred p.pred tag

let rec pp ppf = function
  | Block b ->
      Fmt.pf ppf "Block from=%a preds=[%a]"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf s ->
             if s.alias = s.table then Fmt.string ppf s.table
             else Fmt.pf ppf "%s %s" s.table s.alias))
        b.from
        (Fmt.list ~sep:(Fmt.any "; ") pp_pred_item)
        b.preds
  | Union ts ->
      Fmt.pf ppf "Union(@[%a@])" (Fmt.list ~sep:(Fmt.any ",@ ") pp) ts
