(* The cost model: a simple I/O + CPU formula family in the System-R
   tradition, parameterized so experiments can shift the I/O/CPU balance.
   All costs are in abstract "page-fetch equivalents". *)

type params = {
  cpu_tuple : float; (* processing one tuple *)
  cpu_compare : float; (* one comparison during sort *)
  io_page : float; (* reading one page *)
  index_probe : float; (* descending a B+-tree *)
  hash_build_tuple : float;
}

let default_params =
  {
    cpu_tuple = 0.01;
    cpu_compare = 0.002;
    io_page = 1.0;
    index_probe = 3.0;
    hash_build_tuple = 0.015;
  }

let seq_scan p ~pages ~rows = (p.io_page *. pages) +. (p.cpu_tuple *. rows)

(* Index range scan fetching [match_rows] of a table with [pages] pages
   and [rows] rows: probe + fraction of pages (clustered assumption, as
   for a primary/clustering index) + CPU. *)
let index_scan p ~pages ~rows ~match_rows =
  let frac = if rows <= 0.0 then 0.0 else min 1.0 (match_rows /. rows) in
  p.index_probe +. (p.io_page *. frac *. pages) +. (p.cpu_tuple *. match_rows)

(* Index-only scan emitting [match_rows] key entries packed
   [entries_per_page] to the leaf page: probe + leaf I/O + CPU.  The
   leaves hold narrow keys, not rows, which is the whole advantage. *)
let index_only_scan p ~entries_per_page ~match_rows =
  let epp = max 1.0 entries_per_page in
  p.index_probe
  +. (p.io_page *. Float.of_int (int_of_float (ceil (match_rows /. epp))))
  +. (p.cpu_tuple *. match_rows)

let hash_join p ~left_rows ~right_rows ~out_rows =
  (p.hash_build_tuple *. right_rows)
  +. (p.cpu_tuple *. left_rows)
  +. (p.cpu_tuple *. out_rows)

let nested_loop_join p ~left_rows ~right_rows ~out_rows =
  (p.cpu_tuple *. left_rows *. max 1.0 right_rows) +. (p.cpu_tuple *. out_rows)

let sort p ~rows =
  if rows <= 1.0 then 0.0
  else p.cpu_compare *. rows *. (Float.log rows /. Float.log 2.0)

let group p ~rows = p.cpu_tuple *. rows

let pp_params ppf p =
  Fmt.pf ppf "cpu_tuple=%g io_page=%g probe=%g" p.cpu_tuple p.io_page
    p.index_probe
