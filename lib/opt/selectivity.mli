(** Cardinality estimation.

    Single-table estimation first {e summarizes} the conjuncts into
    per-column intervals (several range predicates on one column are
    estimated once from the histogram, not multiplied), then applies
    independence across columns and default filter factors for residual
    shapes — the structure of DB2's filter-factor model (paper §5).

    Twinned predicates (paper §5.1) are folded in by blending: for twins
    with combined confidence [c], the twinned estimate [E1] drops the
    superseded columns' predicates and adds the twins, and the final
    estimate is [c·E1 + (1−c)·E0] — the paper's "statistical adjustment
    based on this confidence factor". *)

open Rel
open Stats

type env = { db : Database.t; stats : Runstats.t }

(** {1 Default filter factors}

    System-R-style defaults, applied when no statistics fit; exported so
    display models (EXPLAIN ANALYZE's per-node estimator) agree with the
    planner. *)

val default_eq : float
val default_range : float
val default_other : float

val table_cardinality : env -> string -> float

val ndv : env -> table:string -> column:string -> int
(** Distinct values, from statistics; a default when none exist. *)

val interval_selectivity :
  env -> table:string -> column:string -> Interval.t -> float

val conjunct_selectivity : env -> table:string -> Expr.pred list -> float
(** Plain independence estimate of table-local conjuncts. *)

type twin = {
  t_pred : Expr.pred;
  t_confidence : float;
  t_replaces : string option;  (** column whose predicates it supersedes *)
}

val blended_selectivity :
  env -> table:string -> regular:Expr.pred list -> twins:twin list -> float
(** [c·E1 + (1−c)·E0]; equals {!conjunct_selectivity} when [twins] is
    empty. *)

val aliases_of_pred : Database.t -> Logical.block -> Expr.pred -> string list
(** Normalized aliases a predicate touches, for classification. *)

val localize : Expr.pred -> Expr.pred
(** Strip qualifiers for table-local estimation. *)

type block_estimate = {
  per_table : (string * float * float) list;
      (** alias, base cardinality, (twin-blended) selectivity *)
  join_selectivity : float;
  cardinality : float;
}

val estimate_block : env -> Logical.block -> block_estimate

val output_cardinality : env -> Logical.block -> float
(** Including grouping / global-aggregate / limit effects. *)

val query_cardinality : env -> Logical.t -> float
