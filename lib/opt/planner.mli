(** Lowering logical queries to physical plans: access-path selection
    (sequential vs. index range scan), greedy join ordering on estimated
    cardinalities (twin-blended, so SSCs influence join order exactly as
    the paper intends), join method choice, then grouping, projection,
    ordering and limits.  Estimation-only predicates never reach the
    physical plan. *)

open Rel
open Stats
open Exec

type env = {
  db : Database.t;
  stats : Runstats.t;
  params : Cost.params;
  use_indexes : bool;
      (** when [false], access-path selection never considers indexes —
          how {!Explain} builds the index-free backup plan *)
}

val make_env :
  ?params:Cost.params -> ?use_indexes:bool -> Database.t -> Runstats.t -> env
(** [use_indexes] defaults to [true]. *)

val sel_env : env -> Selectivity.env

exception Unplannable of string
(** Raised on shapes the lowering does not support (e.g. a select item
    that is neither grouped nor aggregated). *)

val plan_block : env -> Logical.block -> Plan.t * float
(** The plan and its estimated cost. *)

val plan_query : env -> Logical.t -> Plan.t * float

val plan : env -> Logical.t -> Plan.t
