(** Logical query representation: select-project-join blocks with
    decorated predicates, possibly unioned.

    Every conjunct carries its provenance.  [estimation_only] predicates —
    the paper's {e twinned} predicates (§5.1) — are visible to the
    cardinality model but never compiled into the physical plan, and carry
    the SSC's confidence.  [Introduced] predicates come from
    semantics-preserving rewrites (valid ASCs / ICs) and {e are}
    executed. *)

open Rel

type origin =
  | User
  | Introduced of string  (** rule or soft-constraint name *)
  | Twin of string  (** SSC name; estimation-only *)

type pred_item = {
  pred : Expr.pred;
  origin : origin;
  estimation_only : bool;
  confidence : float;  (** < 1.0 only for twins *)
  replaces : Expr.col_ref option;
      (** for a twin: the column whose user predicates it twins with; the
          blended estimate drops that column's range predicates when the
          twin is taken (paper: "use either the original predicate or the
          new predicate") *)
}

val user_pred : Expr.pred -> pred_item
val introduced_pred : rule:string -> Expr.pred -> pred_item
val twin_pred :
  sc:string -> confidence:float -> ?replaces:Expr.col_ref -> Expr.pred ->
  pred_item

type source = {
  table : string;
  alias : string;
  partitions : int list option;
      (** surviving partitions of a partitioned table after pruning
          ({!Rewrite}), ascending; [None] means all (or the table is not
          partitioned) *)
}

type block = {
  distinct : bool;
  items : Sqlfe.Ast.select_item list;
  from : source list;
  preds : pred_item list;
  group_by : Expr.t list;
  having : Expr.pred;  (** over the grouped output, by output names *)
  order_by : Sqlfe.Ast.order_item list;
  limit : int option;
}

type t = Block of block | Union of t list

exception Unsupported of string

val of_query : Sqlfe.Ast.query -> t
(** Raises {!Unsupported} on empty FROM or duplicate aliases. *)

val to_query : t -> Sqlfe.Ast.query
(** For display; estimation-only predicates are kept out of the WHERE. *)

val executable_preds : block -> pred_item list
val estimation_preds : block -> pred_item list

(** {1 Analysis helpers} *)

val find_source : block -> string -> source option

val sources_of_col : Database.t -> block -> Expr.col_ref -> source list
(** Which sources can a column reference belong to?  Unqualified
    references are matched against the table schemas. *)

val cols_outside_preds : block -> [ `Cols of Expr.col_ref list | `Star ]
(** Column references used by select items / group by / order by. *)

val alias_used_outside :
  Database.t -> block -> string -> except:pred_item list -> bool
(** Does the block reference the alias anywhere besides the predicates in
    [except]?  The join-elimination precondition. *)

val pp_pred_item : Format.formatter -> pred_item -> unit
val pp : Format.formatter -> t -> unit
