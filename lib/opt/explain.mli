(** EXPLAIN: end-to-end optimization of a parsed query with a readable
    trace — the rewritten statement, the rules that fired, the twin
    predicates the cardinality model saw, estimates, and the physical
    plan. *)

type report = {
  original : Sqlfe.Ast.query;
  logical : Logical.t;
  rewritten : Logical.t;
  applied : Rewrite.applied list;
  estimated_cardinality : float;
  plan : Exec.Plan.t;
  estimated_cost : float;
  guards : string list;
      (** names of the constraints the result-changing rewrites relied
          on (estimation-only twins excluded) — execution re-checks
          their validity at open (paper §4.1) *)
  backup_plan : Exec.Plan.t option;
      (** the rewrite-free plan, present whenever a result-changing
          rewrite fired; execution degrades to it if a guard fails *)
}

val optimize : Rewrite.ctx -> Planner.env -> Sqlfe.Ast.query -> report

val pp : Format.formatter -> report -> unit
val to_string : report -> string

(** {1 Rewrite certificates}

    The per-rewrite view [softdb check] re-derives soundness from: the
    rule, its SC premises, the structural delta, and whether the delta
    can change results.  A projection of [report.applied], kept as a
    separate type so the checker does not depend on how the rewriter
    logs. *)

type certificate = {
  cert_rule : string;
  cert_detail : string;
  cert_premises : string list;
  cert_delta : Rewrite.delta;
  cert_result_changing : bool;
}

val certificate_of : Rewrite.applied -> certificate
val certificates : report -> certificate list

val pp_certificate : Format.formatter -> certificate -> unit
val pp_certificates : Format.formatter -> report -> unit

(** {1 EXPLAIN ANALYZE}

    Optimize {e and execute} the query with per-node instrumentation,
    then annotate every operator with its estimated rows, actual rows,
    and q-error.  Estimates come from the same blended (twin-aware)
    model the planner used; actuals from {!Exec.Operators.run_instrumented}. *)

type node_stat = {
  depth : int;
  label : string;
  est_rows : float;
  actual_rows : int;
  node_q_error : float;
  elapsed_s : float;  (** wall clock, children included; informational *)
}

type analysis = {
  a_report : report;
  result : Exec.Executor.result;
  nodes : node_stat list;  (** preorder *)
  total_q_error : float;  (** root estimate vs. root actual *)
}

val analyze : Rewrite.ctx -> Planner.env -> Sqlfe.Ast.query -> analysis

(** {1 Programmatic summaries}

    The benchmark harness gates on these numbers, so they are exposed as
    values rather than only via the rendered EXPLAIN ANALYZE text. *)

val rewrite_counts : report -> (string * int) list
(** Fired-rule counts of a report, sorted by rule name. *)

val node_q_error_max : analysis -> float
(** Worst per-node q-error; 1.0 for an empty node list. *)

val node_q_error_geomean : analysis -> float
(** Geometric mean of the per-node q-errors; 1.0 for an empty list. *)

val pp_analysis : Format.formatter -> analysis -> unit
val analysis_to_string : analysis -> string
