(* Lowering logical queries to physical plans: access-path selection
   (sequential vs. index range scan), greedy join ordering on estimated
   cardinalities (twin-blended, so SSCs influence join order exactly as
   the paper intends), join method choice, then grouping, projection,
   ordering and limits. *)

open Rel
open Stats
open Exec

type env = {
  db : Database.t;
  stats : Runstats.t;
  params : Cost.params;
  use_indexes : bool;
      (* false builds the index-free backup plan ({!Explain}) *)
}

let make_env ?(params = Cost.default_params) ?(use_indexes = true) db stats =
  { db; stats; params; use_indexes }

let sel_env env = { Selectivity.db = env.db; stats = env.stats }

exception Unplannable of string

let unplannable fmt = Printf.ksprintf (fun s -> raise (Unplannable s)) fmt

let norm = String.lowercase_ascii

(* ---- predicate classification ------------------------------------------- *)

type classified = {
  local : (string * Expr.pred list) list; (* by alias (normalized) *)
  equi : (string * Expr.t * string * Expr.t * Expr.pred) list;
      (* alias1, key1, alias2, key2, original predicate *)
  cross : Expr.pred list;
}

let classify env (block : Logical.block) : classified =
  let local : (string, Expr.pred list) Hashtbl.t = Hashtbl.create 8 in
  let equi = ref [] and cross = ref [] in
  let resolve r =
    match Logical.sources_of_col env.db block r with
    | [ s ] -> Some s
    | _ -> None
  in
  List.iter
    (fun (p : Logical.pred_item) ->
      let pred = p.Logical.pred in
      let aliases = Selectivity.aliases_of_pred env.db block pred in
      match aliases with
      | [] | [ _ ] ->
          let a =
            match aliases with
            | [ a ] -> a
            | _ -> (
                (* constant predicate: attach to the first source *)
                match block.Logical.from with
                | s :: _ -> norm s.Logical.alias
                | [] -> unplannable "block without sources")
          in
          Hashtbl.replace local a
            (pred :: Option.value (Hashtbl.find_opt local a) ~default:[])
      | _ -> (
          match pred with
          | Expr.Cmp (Expr.Eq, (Expr.Col ra as ka), (Expr.Col rb as kb)) -> (
              match (resolve ra, resolve rb) with
              | Some sa, Some sb when sa.Logical.alias <> sb.Logical.alias ->
                  equi :=
                    (norm sa.Logical.alias, ka, norm sb.Logical.alias, kb, pred)
                    :: !equi
              | _ -> cross := pred :: !cross)
          | _ -> cross := pred :: !cross))
    (Logical.executable_preds block);
  {
    local =
      Hashtbl.fold (fun a ps acc -> (a, List.rev ps) :: acc) local [];
    equi = List.rev !equi;
    cross = List.rev !cross;
  }

(* ---- access-path selection ------------------------------------------------ *)

let bound_of_endpoint (e : Interval.endpoint option) =
  match e with
  | None -> Index.Unbounded
  | Some { Interval.v; incl = true } -> Index.Incl v
  | Some { Interval.v; incl = false } -> Index.Excl v

(* Every column the block needs from one source — predicates, select
   items, grouping, ordering, join keys.  [None] means "all of them",
   i.e. a SELECT-star block.  Ambiguous references are attributed conservatively to
   every source they could belong to.  This is the coverage test for
   index-only access: a readable index whose key ⊇ the needed set can
   answer the alias without touching the heap. *)
let needed_cols env (block : Logical.block) (s : Logical.source) =
  match Logical.cols_outside_preds block with
  | `Star -> None
  | `Cols outside ->
      let a = norm s.Logical.alias in
      let pred_cols =
        List.concat_map
          (fun (p : Logical.pred_item) -> Expr.cols_of_pred p.Logical.pred)
          (Logical.executable_preds block)
      in
      let mine =
        List.filter_map
          (fun (r : Expr.col_ref) ->
            let srcs = Logical.sources_of_col env.db block r in
            if
              List.exists
                (fun (src : Logical.source) -> norm src.Logical.alias = a)
                srcs
            then Some (norm r.Expr.col)
            else None)
          (outside @ pred_cols)
      in
      Some (List.sort_uniq String.compare mine)

(* pick the cheapest access path for one source given its local preds;
   returns plan, estimated scan cost, and output cardinality *)
let access_path env (block : Logical.block) (s : Logical.source) local_preds
    ~blended_sel =
  let table =
    match Database.find_table env.db s.Logical.table with
    | Some t -> t
    | None -> unplannable "no such table: %s" s.Logical.table
  in
  let rows = float_of_int (Table.cardinality table) in
  let pages = float_of_int (Table.pages table) in
  let filter = Expr.conjoin local_preds in
  let out_card = rows *. blended_sel in
  match Database.partitioning env.db s.Logical.table with
  | Some part ->
      (* partitioned source: scatter the surviving segments (all of them
         unless {!Rewrite} pruned) and gather in segment order.  Access
         within a segment is sequential — the heap indexes span the
         whole table, so a segment-local probe would not be honest about
         I/O. *)
      let surviving =
        match s.Logical.partitions with
        | Some ps ->
            List.filter (fun i -> i >= 0 && i < Partition.count part) ps
        | None -> List.init (Partition.count part) Fun.id
      in
      let rpp = Table.rows_per_page table in
      let seg_pages =
        List.fold_left
          (fun acc i -> acc + Partition.pages part i ~rows_per_page:rpp)
          0 surviving
      in
      let seg_rows =
        List.fold_left (fun acc i -> acc + Partition.rows part i) 0 surviving
      in
      let children =
        List.map
          (fun i ->
            ( i,
              Plan.Partition_scan
                {
                  table = s.Logical.table;
                  alias = s.Logical.alias;
                  partition = i;
                  filter;
                } ))
          surviving
      in
      let plan =
        Plan.Scatter_gather
          { table = s.Logical.table; alias = s.Logical.alias; children }
      in
      let cost =
        Cost.seq_scan env.params
          ~pages:(float_of_int seg_pages)
          ~rows:(float_of_int seg_rows)
      in
      (plan, cost, max 1.0 (float_of_int seg_rows *. blended_sel))
  | None ->
  let seq_plan =
    Plan.Seq_scan { table = s.Logical.table; alias = s.Logical.alias; filter }
  in
  let seq_cost = Cost.seq_scan env.params ~pages ~rows in
  (* index alternatives: single-column indexes with a bounded interval *)
  let key_of (r : Expr.col_ref) =
    match Logical.sources_of_col env.db block r with
    | [ src ] when norm src.Logical.alias = norm s.Logical.alias ->
        Some (norm r.Expr.col)
    | [] when r.Expr.rel = None -> Some (norm r.Expr.col)
    | _ -> None
  in
  let entries, _ = Interval.summarize ~key_of local_preds in
  (* only a Readable index may serve probes; Write_only / Backfilling /
     Demoted indexes are maintenance-only (lib/idx lifecycle) *)
  let candidates =
    if not env.use_indexes then []
    else
      List.filter_map
        (fun (col_key, (r, iv)) ->
          if Interval.is_full iv then None
          else
            match
              Database.find_index_on_column env.db s.Logical.table r.Expr.col
            with
            | None -> None
            | Some idx when not (Index.is_readable idx) -> None
            | Some idx ->
                let match_sel =
                  Selectivity.interval_selectivity (sel_env env)
                    ~table:s.Logical.table ~column:r.Expr.col iv
                in
                let match_rows = rows *. match_sel in
                let cost =
                  Cost.index_scan env.params ~pages ~rows ~match_rows
                in
                ignore col_key;
                Some
                  ( Plan.Index_scan
                      {
                        table = s.Logical.table;
                        alias = s.Logical.alias;
                        index = Index.name idx;
                        lo = bound_of_endpoint iv.Interval.lo;
                        hi = bound_of_endpoint iv.Interval.hi;
                        filter;
                      },
                    cost ))
        entries
  in
  (* index-only alternatives: a readable index whose key covers every
     column the block needs from this source answers it without heap
     I/O.  Single-column keys take the summarized interval as probe
     bounds; composite keys scan all entries and filter. *)
  let candidates =
    if not env.use_indexes then candidates
    else
      match needed_cols env block s with
      | None -> candidates (* SELECT *: the heap is needed *)
      | Some needed ->
          let covering =
            List.filter_map
              (fun idx ->
                if not (Index.is_readable idx) then None
                else
                  let key_cols = List.map norm (Index.columns idx) in
                  if
                    not
                      (List.for_all (fun c -> List.mem c key_cols) needed)
                  then None
                  else
                    (* the leading key column's summarized interval
                       narrows the probe whatever the key arity:
                       {!Index.fold_entries} applies leading-column
                       bounds to composite keys too *)
                    let lo, hi, match_sel =
                      match key_cols with
                      | [] -> (Index.Unbounded, Index.Unbounded, 1.0)
                      | kc :: _ -> (
                          match
                            List.find_opt
                              (fun (_, ((r : Expr.col_ref), iv)) ->
                                norm r.Expr.col = kc
                                && not (Interval.is_full iv))
                              entries
                          with
                          | Some (_, (r, iv)) ->
                              ( bound_of_endpoint iv.Interval.lo,
                                bound_of_endpoint iv.Interval.hi,
                                Selectivity.interval_selectivity
                                  (sel_env env) ~table:s.Logical.table
                                  ~column:r.Expr.col iv )
                          | None ->
                              (Index.Unbounded, Index.Unbounded, 1.0))
                    in
                    let entry_width =
                      Table.bytes_per_value * List.length key_cols
                    in
                    let entries_per_page =
                      float_of_int
                        (max 1 (Table.page_size / max 1 entry_width))
                    in
                    let cost =
                      Cost.index_only_scan env.params ~entries_per_page
                        ~match_rows:(rows *. match_sel)
                    in
                    Some
                      ( Plan.Index_only_scan
                          {
                            table = s.Logical.table;
                            alias = s.Logical.alias;
                            index = Index.name idx;
                            columns = Index.columns idx;
                            lo;
                            hi;
                            filter;
                          },
                        cost ))
              (List.sort
                 (fun a b -> String.compare (Index.name a) (Index.name b))
                 (Database.indexes_on env.db s.Logical.table))
          in
          candidates @ covering
  in
  let best_plan, best_cost =
    List.fold_left
      (fun (bp, bc) (p, c) -> if c < bc then (p, c) else (bp, bc))
      (seq_plan, seq_cost) candidates
  in
  (best_plan, best_cost, max 1.0 out_card)

(* ---- join ordering --------------------------------------------------------- *)

type rel_state = {
  aliases : string list; (* normalized *)
  plan : Plan.t;
  card : float;
  acc_cost : float;
}

let join_selectivity env block (_, ka, _, kb, _) =
  let ndv_of k =
    match k with
    | Expr.Col r -> (
        match Logical.sources_of_col env.db block r with
        | [ s ] ->
            Selectivity.ndv (sel_env env) ~table:s.Logical.table
              ~column:r.Expr.col
        | _ -> 25)
    | _ -> 25
  in
  1.0 /. float_of_int (max (ndv_of ka) (ndv_of kb))

(* Partition-constraint join bound (paper §2: constraints as
   characterizations feeding the estimator).  When both sides are base
   sources of tables partitioned the same way and the equi-join keys are
   their partition columns, matches are confined to same-numbered
   segments, so [Σᵢ lᵢ·rᵢ] caps the join output. *)
let aligned_cap env (block : Logical.block) left right eqs =
  match (left.aliases, right.aliases) with
  | [ la ], [ ra ] -> (
      let source a =
        List.find_opt
          (fun (s : Logical.source) -> norm s.Logical.alias = a)
          block.Logical.from
      in
      match (source la, source ra) with
      | Some ls, Some rs -> (
          match
            ( Database.partitioning env.db ls.Logical.table,
              Database.partitioning env.db rs.Logical.table )
          with
          | Some lp, Some rp when Partition.aligned lp rp ->
              let is_part_col part k =
                match k with
                | Expr.Col r -> norm r.Expr.col = norm (Partition.column part)
                | _ -> false
              in
              let keyed =
                List.exists
                  (fun (a1, k1, a2, k2, _) ->
                    (a1 = la && a2 = ra && is_part_col lp k1
                   && is_part_col rp k2)
                    || (a1 = ra && a2 = la && is_part_col rp k1
                      && is_part_col lp k2))
                  eqs
              in
              if keyed then
                let seg_rows p =
                  Array.init (Partition.count p) (Partition.rows p)
                in
                Some
                  (Part_stats.aligned_join_cap ~left:(seg_rows lp)
                     ~right:(seg_rows rp))
              else None
          | _ -> None)
      | _ -> None)
  | _ -> None

let order_joins env (block : Logical.block) (cls : classified) base_rels =
  match base_rels with
  | [] -> unplannable "no relations"
  | [ r ] ->
      (* attach any stray cross predicates (shouldn't exist) *)
      (r, cls.cross)
  | _ ->
      let remaining = ref base_rels in
      let pending_equi = ref cls.equi in
      let pending_cross = ref cls.cross in
      (* start from the smallest relation *)
      let start =
        List.fold_left
          (fun best r -> if r.card < best.card then r else best)
          (List.hd base_rels) (List.tl base_rels)
      in
      remaining :=
        List.filter (fun r -> r.aliases <> start.aliases) !remaining;
      let current = ref start in
      while !remaining <> [] do
        let connects cand =
          List.filter
            (fun (a1, _, a2, _, _) ->
              (List.mem a1 !current.aliases && List.mem a2 cand.aliases)
              || (List.mem a2 !current.aliases && List.mem a1 cand.aliases))
            !pending_equi
        in
        (* prefer connected candidates; among them minimize resulting card *)
        let scored =
          List.map
            (fun cand ->
              let eqs = connects cand in
              let sel =
                List.fold_left
                  (fun acc e -> acc *. join_selectivity env block e)
                  1.0 eqs
              in
              let out = !current.card *. cand.card *. sel in
              let out =
                match aligned_cap env block !current cand eqs with
                | Some cap -> Float.min out cap
                | None -> out
              in
              (cand, eqs, out))
            !remaining
        in
        let connected = List.filter (fun (_, eqs, _) -> eqs <> []) scored in
        let pool = if connected <> [] then connected else scored in
        let cand, eqs, out_card =
          List.fold_left
            (fun (bc, be, bo) (c, e, o) ->
              if o < bo then (c, e, o) else (bc, be, bo))
            (let c, e, o = List.hd pool in
             (c, e, o))
            (List.tl pool)
        in
        let new_aliases = !current.aliases @ cand.aliases in
        (* cross predicates now fully contained *)
        let applicable, rest =
          List.partition
            (fun p ->
              let als = Selectivity.aliases_of_pred env.db block p in
              als <> [] && List.for_all (fun a -> List.mem a new_aliases) als)
            !pending_cross
        in
        pending_cross := rest;
        let residual = Expr.conjoin applicable in
        let plan, step_cost =
          if eqs <> [] then begin
            (* orient keys: left = current side *)
            let lkeys, rkeys =
              List.split
                (List.map
                   (fun (a1, k1, _, k2, _) ->
                     if List.mem a1 !current.aliases then (k1, k2) else (k2, k1))
                   eqs)
            in
            ( Plan.Hash_join
                {
                  left = !current.plan;
                  right = cand.plan;
                  left_keys = lkeys;
                  right_keys = rkeys;
                  residual;
                },
              Cost.hash_join env.params ~left_rows:!current.card
                ~right_rows:cand.card ~out_rows:out_card )
          end
          else
            ( Plan.Nested_loop_join
                { left = !current.plan; right = cand.plan; pred = residual },
              Cost.nested_loop_join env.params ~left_rows:!current.card
                ~right_rows:cand.card ~out_rows:out_card )
        in
        pending_equi :=
          List.filter
            (fun e -> not (List.exists (fun e' -> e' == e) eqs))
            !pending_equi;
        current :=
          {
            aliases = new_aliases;
            plan;
            card = max 1.0 out_card;
            acc_cost = !current.acc_cost +. cand.acc_cost +. step_cost;
          };
        remaining :=
          List.filter (fun r -> r.aliases <> cand.aliases) !remaining
      done;
      (* any equi predicates left (same pair twice etc.) become filters *)
      let leftovers =
        List.map (fun (_, _, _, _, p) -> p) !pending_equi @ !pending_cross
      in
      (!current, leftovers)

(* ---- select items / grouping / ordering ------------------------------------ *)

let item_output_name i (item : Sqlfe.Ast.select_item) =
  match item with
  | Sqlfe.Ast.Star -> "*"
  | Sqlfe.Ast.Scalar (_, Some a) -> a
  | Sqlfe.Ast.Scalar (Expr.Col r, None) -> r.Expr.col
  | Sqlfe.Ast.Scalar (_, None) -> Printf.sprintf "expr%d" (i + 1)
  | Sqlfe.Ast.Aggregate (fn, _, None) ->
      Printf.sprintf "%s%d" (String.lowercase_ascii (Sqlfe.Ast.agg_name fn))
        (i + 1)
  | Sqlfe.Ast.Aggregate (_, _, Some a) -> a

let plan_block env (block : Logical.block) : Plan.t * float =
  let estimate = Selectivity.estimate_block (sel_env env) block in
  let cls = classify env block in
  let base_rels =
    List.map
      (fun (s : Logical.source) ->
        let a = norm s.Logical.alias in
        let local = Option.value (List.assoc_opt a cls.local) ~default:[] in
        let sel =
          match
            List.find_opt
              (fun (alias, _, _) -> norm alias = a)
              estimate.Selectivity.per_table
          with
          | Some (_, _, sel) -> sel
          | None -> 1.0
        in
        let plan, cost, card =
          access_path env block s local ~blended_sel:sel
        in
        { aliases = [ a ]; plan; card; acc_cost = cost })
      block.Logical.from
  in
  let joined, leftovers = order_joins env block cls base_rels in
  let plan, cost =
    match leftovers with
    | [] -> (joined.plan, joined.acc_cost)
    | ps ->
        ( Plan.Filter { input = joined.plan; pred = Expr.conjoin ps },
          joined.acc_cost +. (env.params.Cost.cpu_tuple *. joined.card) )
  in
  (* a block proven contradictory feeds zero rows into whatever follows —
     the LIMIT 0 must sit *below* any aggregation, which still owes one
     output row for a global aggregate over empty input *)
  let falsified =
    List.exists
      (fun (p : Logical.pred_item) ->
        (not p.Logical.estimation_only) && p.Logical.pred = Expr.Pfalse)
      block.Logical.preds
  in
  let plan = if falsified then Plan.Limit { input = plan; n = 0 } else plan in
  let items = block.Logical.items in
  let has_group =
    block.Logical.group_by <> []
    || List.exists
         (function Sqlfe.Ast.Aggregate _ -> true | _ -> false)
         items
  in
  let plan, cost, output_names =
    if has_group then begin
      (* group keys named _g0.., aggregates named by their output name *)
      let keys =
        List.mapi
          (fun i e -> (e, Printf.sprintf "_g%d" i))
          block.Logical.group_by
      in
      let aggs =
        List.filteri (fun _ item ->
            match item with Sqlfe.Ast.Aggregate _ -> true | _ -> false)
          items
        |> List.mapi (fun i item ->
               match item with
               | Sqlfe.Ast.Aggregate (fn, arg, _) ->
                   let out_name =
                     (* recover positional name from the items list *)
                     let idx = ref (-1) in
                     let count = ref (-1) in
                     List.iteri
                       (fun j it ->
                         match it with
                         | Sqlfe.Ast.Aggregate _ ->
                             incr count;
                             if !count = i then idx := j
                         | _ -> ())
                       items;
                     item_output_name !idx item
                   in
                   {
                     Plan.fn =
                       (match fn with
                       | Sqlfe.Ast.Count -> Plan.Count
                       | Sqlfe.Ast.Sum -> Plan.Sum
                       | Sqlfe.Ast.Avg -> Plan.Avg
                       | Sqlfe.Ast.Min -> Plan.Min
                       | Sqlfe.Ast.Max -> Plan.Max);
                     arg;
                     out_name;
                   }
               | _ -> assert false)
      in
      let group_plan = Plan.Group { input = plan; keys; aggs } in
      (* project to the select-item order *)
      let exprs =
        List.mapi
          (fun i item ->
            let name = item_output_name i item in
            match item with
            | Sqlfe.Ast.Star ->
                unplannable "SELECT * cannot be combined with GROUP BY"
            | Sqlfe.Ast.Aggregate _ ->
                (Expr.Col { Expr.rel = None; col = name }, name)
            | Sqlfe.Ast.Scalar (e, _) -> (
                match
                  List.find_opt (fun (k, _) -> k = e) keys
                with
                | Some (_, kname) ->
                    (Expr.Col { Expr.rel = None; col = kname }, name)
                | None ->
                    unplannable
                      "select item %s is neither grouped nor aggregated"
                      (Fmt.str "%a" Expr.pp e)))
          items
      in
      ( Plan.Project { input = group_plan; exprs },
        cost +. Cost.group env.params ~rows:joined.card,
        List.map snd exprs )
    end
    else if
      List.for_all (function Sqlfe.Ast.Star -> true | _ -> false) items
    then (plan, cost, [])
    else
      let exprs =
        List.mapi
          (fun i item ->
            match item with
            | Sqlfe.Ast.Scalar (e, _) -> (e, item_output_name i item)
            | Sqlfe.Ast.Star ->
                unplannable "mixing * with explicit select items"
            | Sqlfe.Ast.Aggregate _ -> assert false)
          items
      in
      ( Plan.Project { input = plan; exprs },
        cost,
        List.map snd exprs )
  in
  (* HAVING: a filter over the projected output, referencing output
     column names *)
  let plan =
    match block.Logical.having with
    | Expr.Ptrue -> plan
    | p ->
        if output_names = [] then
          unplannable "HAVING requires explicit select items"
        else Plan.Filter { input = plan; pred = p }
  in
  let plan =
    if block.Logical.distinct then Plan.Distinct plan else plan
  in
  (* ordering *)
  let plan, cost =
    match block.Logical.order_by with
    | [] -> (plan, cost)
    | order ->
        let keys =
          List.map
            (fun (o : Sqlfe.Ast.order_item) ->
              let key =
                if output_names = [] then o.Sqlfe.Ast.key (* SELECT * *)
                else
                  (* the key must name or equal a select item *)
                  let matched =
                    List.exists
                      (fun n ->
                        match o.Sqlfe.Ast.key with
                        | Expr.Col r ->
                            r.Expr.rel = None && norm r.Expr.col = norm n
                        | _ -> false)
                      output_names
                  in
                  if matched then o.Sqlfe.Ast.key
                  else
                    (* try structural match against the item exprs *)
                    let rec find i items =
                      match items with
                      | [] ->
                          unplannable
                            "ORDER BY key %s not available in select list"
                            (Fmt.str "%a" Expr.pp o.Sqlfe.Ast.key)
                      | Sqlfe.Ast.Scalar (e, _) :: _ when e = o.Sqlfe.Ast.key
                        ->
                          Expr.Col
                            { Expr.rel = None; col = List.nth output_names i }
                      | _ :: tl -> find (i + 1) tl
                    in
                    find 0 block.Logical.items
              in
              { Plan.key; asc = o.Sqlfe.Ast.asc })
            order
        in
        ( Plan.Sort { input = plan; keys },
          cost +. Cost.sort env.params ~rows:joined.card )
  in
  let plan =
    match block.Logical.limit with
    | Some n -> Plan.Limit { input = plan; n }
    | None -> plan
  in
  (plan, cost)

let rec plan_query env (q : Logical.t) : Plan.t * float =
  match q with
  | Logical.Block b -> plan_block env b
  | Logical.Union branches ->
      let planned = List.map (plan_query env) branches in
      ( Plan.Union_all (List.map fst planned),
        List.fold_left (fun acc (_, c) -> acc +. c) 0.0 planned )

let plan env q = fst (plan_query env q)
