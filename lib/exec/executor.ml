(* Convenience façade over {!Operators}: run a physical plan and package
   the rows with their column layout for display and comparison. *)

open Rel

type result = {
  columns : string list;
  rows : Tuple.t list;
  counters : Operators.Counters.t;
}

let column_names db plan =
  Plan.binding db plan |> Array.to_list
  |> List.map (fun s -> s.Expr.Binding.name)

let run db plan =
  let counters = Operators.Counters.create () in
  let rows = Operators.run db ~counters plan in
  { columns = column_names db plan; rows; counters }

(* Guarded execution (paper §4.1's flag-and-revert): a plan whose
   rewrites relied on soft constraints carries their names as guards.
   At open, each guard is checked through [guard_ok] (the catalog
   lives above this layer); any invalid guard degrades the run to the
   rewrite-free [backup] plan.  Returns whether the fallback ran. *)
let run_guarded db ~guards ~guard_ok ~backup plan =
  match backup with
  | Some backup_plan when not (List.for_all guard_ok guards) ->
      (run db backup_plan, true)
  | _ -> (run db plan, false)

(* Order-insensitive multiset equality of results: the soundness oracle
   for rewrite property tests. *)
let same_rows a b =
  let sort rows = List.sort Tuple.compare rows in
  List.length a.rows = List.length b.rows
  && List.for_all2 Tuple.equal (sort a.rows) (sort b.rows)

let pp_result ppf r =
  Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") string) r.columns;
  List.iter (fun row -> Fmt.pf ppf "%a@." Tuple.pp row) r.rows;
  Fmt.pf ppf "(%d rows; %a)@." (List.length r.rows) Operators.Counters.pp
    r.counters

let to_string r = Fmt.str "%a" pp_result r
