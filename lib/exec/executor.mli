(** Convenience façade over {!Operators}: run a physical plan and package
    the rows with their column layout. *)

open Rel

type result = {
  columns : string list;
  rows : Tuple.t list;
  counters : Operators.Counters.t;
}

val column_names : Database.t -> Plan.t -> string list

val run : Database.t -> Plan.t -> result

val run_guarded :
  Database.t -> guards:string list -> guard_ok:(string -> bool) ->
  backup:Plan.t option -> Plan.t -> result * bool
(** Guarded execution (paper §4.1's flag-and-revert): check every guard
    with [guard_ok] at open; if any fails and a [backup] (rewrite-free)
    plan exists, run that instead.  The boolean reports whether the
    fallback ran. *)

val same_rows : result -> result -> bool
(** Order-insensitive multiset equality — the soundness oracle for the
    rewrite property tests. *)

val pp_result : Format.formatter -> result -> unit
val to_string : result -> string
