(** Plan interpretation: each node opens as a pull cursor.

    {!Counters} records the physical work done — rows fetched from
    storage, page reads (under the same fixed-width page model the cost
    model uses), index probes — so experiments can report I/O-shaped
    numbers rather than wall time alone (paper §2 [8]: "reduce the number
    of pages that need to be scanned"). *)

open Rel

module Counters : sig
  type part = { mutable part_rows : int; mutable part_pages : int }

  type t = {
    mutable rows_scanned : int;  (** rows fetched from base tables *)
    mutable pages_read : int;
    mutable index_probes : int;
    mutable rows_output : int;  (** rows produced at the plan root *)
    mutable partitions : ((string * int) * part) list;
        (** per-(table, partition) slice of rows/pages; only
            {!Plan.Partition_scan} contributes *)
  }

  val create : unit -> t
  val reset : t -> unit

  val partition_counter : t -> table:string -> partition:int -> part
  (** The (table, partition) slice, created on first use. *)

  val partition_counts : t -> (string * int * int * int) list
  (** [(table, partition, rows_scanned, pages_read)] sorted by
      (table, partition) — the deterministic per-partition report
      [sys.partitions] and BENCH.json consume. *)

  val merge : into:t -> t -> unit
  (** Fold one counter record into another (scatter children merge their
      private counters back in child order). *)

  val pp : Format.formatter -> t -> unit
end

type cursor = unit -> Tuple.t option

exception Exec_error of string

exception Scatter_abandoned of string
(** Raised {e by a scatter runner's task slot} to mark a per-partition
    task that must not be retried (deadline exceeded, query cancelled).
    The gather turns it into an {!Exec_error} with partition
    attribution. *)

val scatter_runner : ((unit -> unit) array -> exn option array) ref
(** How {!Plan.Scatter_gather} runs its per-partition thunks: given the
    tasks, return one outcome per task ([None] = completed, [Some exn] =
    raised).  Defaults to sequential in-place execution; [Srv] installs
    a pool-backed runner at server start.  Injection (rather than a
    parameter) keeps [Exec] independent of [Srv]. *)

val open_plan : Database.t -> Counters.t -> Plan.t -> cursor
(** Open a plan as a cursor; work counters accumulate into the given
    record as the cursor is pulled. *)

val drain : cursor -> Tuple.t list

val run : Database.t -> ?counters:Counters.t -> Plan.t -> Tuple.t list
(** Open, drain, and count the output rows. *)

(** {1 Per-node instrumentation (EXPLAIN ANALYZE)} *)

(** Runtime statistics of one plan node.  [produced] — the node's actual
    output cardinality — is deterministic; [elapsed_s] is wall clock
    spent inside the node's cursor {e including} its children, and is
    informational only. *)
module Node : sig
  type t = { mutable produced : int; mutable elapsed_s : float }

  val create : unit -> t
end

val open_node :
  (Plan.t -> cursor -> cursor) -> Database.t -> Counters.t -> Plan.t -> cursor
(** [open_node wrap db counters plan] opens the plan with every node's
    cursor passed through [wrap] (children first). *)

val run_instrumented :
  Database.t -> ?counters:Counters.t -> Plan.t ->
  Tuple.t list * (Plan.t * Node.t) list
(** Like {!run}, additionally returning one {!Node.t} per plan node,
    keyed by physical identity ([==]) of the immutable plan subtrees. *)
