(** Plan interpretation: each node opens as a pull cursor.

    {!Counters} records the physical work done — rows fetched from
    storage, page reads (under the same fixed-width page model the cost
    model uses), index probes — so experiments can report I/O-shaped
    numbers rather than wall time alone (paper §2 [8]: "reduce the number
    of pages that need to be scanned"). *)

open Rel

module Counters : sig
  type t = {
    mutable rows_scanned : int;  (** rows fetched from base tables *)
    mutable pages_read : int;
    mutable index_probes : int;
    mutable rows_output : int;  (** rows produced at the plan root *)
  }

  val create : unit -> t
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

type cursor = unit -> Tuple.t option

exception Exec_error of string

val open_plan : Database.t -> Counters.t -> Plan.t -> cursor
(** Open a plan as a cursor; work counters accumulate into the given
    record as the cursor is pulled. *)

val drain : cursor -> Tuple.t list

val run : Database.t -> ?counters:Counters.t -> Plan.t -> Tuple.t list
(** Open, drain, and count the output rows. *)

(** {1 Per-node instrumentation (EXPLAIN ANALYZE)} *)

(** Runtime statistics of one plan node.  [produced] — the node's actual
    output cardinality — is deterministic; [elapsed_s] is wall clock
    spent inside the node's cursor {e including} its children, and is
    informational only. *)
module Node : sig
  type t = { mutable produced : int; mutable elapsed_s : float }

  val create : unit -> t
end

val open_node :
  (Plan.t -> cursor -> cursor) -> Database.t -> Counters.t -> Plan.t -> cursor
(** [open_node wrap db counters plan] opens the plan with every node's
    cursor passed through [wrap] (children first). *)

val run_instrumented :
  Database.t -> ?counters:Counters.t -> Plan.t ->
  Tuple.t list * (Plan.t * Node.t) list
(** Like {!run}, additionally returning one {!Node.t} per plan node,
    keyed by physical identity ([==]) of the immutable plan subtrees. *)
