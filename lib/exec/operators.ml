(* Plan interpretation: each node opens as a pull cursor.

   [Counters] records the physical work done — rows fetched from storage,
   page reads (by the same fixed-width page model the cost model uses),
   and index probes — so experiments can report I/O-shaped numbers rather
   than wall time alone (paper §2 [8]: "reduce the number of pages that
   need to be scanned"). *)

open Rel

module Counters = struct
  type part = { mutable part_rows : int; mutable part_pages : int }

  type t = {
    mutable rows_scanned : int; (* rows fetched from base tables *)
    mutable pages_read : int;
    mutable index_probes : int;
    mutable rows_output : int; (* rows produced at the plan root *)
    mutable partitions : ((string * int) * part) list;
        (* per-(table, partition) slice of rows/pages; only partition
           scans contribute *)
  }

  let create () =
    { rows_scanned = 0; pages_read = 0; index_probes = 0; rows_output = 0;
      partitions = [] }

  let reset t =
    t.rows_scanned <- 0;
    t.pages_read <- 0;
    t.index_probes <- 0;
    t.rows_output <- 0;
    t.partitions <- []

  let partition_counter t ~table ~partition =
    let key = (table, partition) in
    match List.assoc_opt key t.partitions with
    | Some p -> p
    | None ->
        let p = { part_rows = 0; part_pages = 0 } in
        t.partitions <- (key, p) :: t.partitions;
        p

  let partition_counts t =
    List.sort compare
      (List.map
         (fun ((table, partition), p) ->
           (table, partition, p.part_rows, p.part_pages))
         t.partitions)

  (* Fold [from] into [into] — how a scatter-gather folds its children's
     private counters back in deterministic child order. *)
  let merge ~into from =
    into.rows_scanned <- into.rows_scanned + from.rows_scanned;
    into.pages_read <- into.pages_read + from.pages_read;
    into.index_probes <- into.index_probes + from.index_probes;
    into.rows_output <- into.rows_output + from.rows_output;
    List.iter
      (fun ((table, partition), p) ->
        let dst = partition_counter into ~table ~partition in
        dst.part_rows <- dst.part_rows + p.part_rows;
        dst.part_pages <- dst.part_pages + p.part_pages)
      (List.rev from.partitions)

  let pp ppf t =
    Fmt.pf ppf "scanned=%d pages=%d probes=%d out=%d" t.rows_scanned
      t.pages_read t.index_probes t.rows_output;
    List.iter
      (fun (table, partition, rows, pages) ->
        Fmt.pf ppf " %s[%d]=%d/%dp" table partition rows pages)
      (partition_counts t)
end

type cursor = unit -> Tuple.t option

exception Exec_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

let cursor_of_list rows =
  let rest = ref rows in
  fun () ->
    match !rest with
    | [] -> None
    | r :: tl ->
        rest := tl;
        Some r

let drain (c : cursor) =
  let rec go acc = match c () with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

(* ---- scatter-gather runner --------------------------------------------- *)

exception Scatter_abandoned of string

(* How a [Scatter_gather] node runs its per-partition thunks.  The
   default executes them sequentially in place; [Srv] installs a runner
   that fans them across its domain worker pool.  A runner returns one
   outcome per task; a task that raised yields its exception.  Raising
   [Scatter_abandoned] (deadline passed, query cancelled) marks the task
   as not retryable.  This is a ref, not a parameter, because [Exec] must
   not depend on [Srv] — injection keeps the layering acyclic. *)
let scatter_runner : ((unit -> unit) array -> exn option array) ref =
  ref (fun tasks ->
      Array.map (fun f -> try f (); None with e -> Some e) tasks)

(* ---- aggregation accumulators ----------------------------------------- *)

type acc = {
  mutable count : int; (* non-null inputs; all rows for a bare COUNT *)
  mutable sum : float;
  mutable sum_is_int : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let fresh_acc () =
  { count = 0; sum = 0.0; sum_is_int = true; min_v = Value.Null;
    max_v = Value.Null }

let feed_acc acc (v : Value.t) =
  match v with
  | Value.Null -> ()
  | v ->
      acc.count <- acc.count + 1;
      (match v with
      | Value.Int i -> acc.sum <- acc.sum +. float_of_int i
      | Value.Float f ->
          acc.sum <- acc.sum +. f;
          acc.sum_is_int <- false
      | _ -> ());
      if Value.is_null acc.min_v || Value.compare_total v acc.min_v < 0 then
        acc.min_v <- v;
      if Value.is_null acc.max_v || Value.compare_total v acc.max_v > 0 then
        acc.max_v <- v

let finish_acc (fn : Plan.agg_fn) acc ~rows_in_group =
  match fn with
  | Plan.Count -> Value.Int (match acc with None -> rows_in_group | Some a -> a.count)
  | Plan.Sum -> (
      match acc with
      | None | Some { count = 0; _ } -> Value.Null
      | Some a ->
          if a.sum_is_int then Value.Int (int_of_float a.sum)
          else Value.Float a.sum)
  | Plan.Avg -> (
      match acc with
      | None | Some { count = 0; _ } -> Value.Null
      | Some a -> Value.Float (a.sum /. float_of_int a.count))
  | Plan.Min -> ( match acc with None -> Value.Null | Some a -> a.min_v)
  | Plan.Max -> ( match acc with None -> Value.Null | Some a -> a.max_v)

(* ---- opening plans ------------------------------------------------------ *)

(* [wrap] sees every (node, cursor) pair as the tree is opened, outermost
   last — the hook the instrumented runner uses to observe per-node
   output cardinality and time without the operators knowing. *)
let rec open_node wrap db (counters : Counters.t) (plan : Plan.t) : cursor =
  wrap plan (open_raw wrap db counters plan)

and open_raw wrap db (counters : Counters.t) (plan : Plan.t) : cursor =
  match plan with
  | Plan.Seq_scan { table; alias = _; filter } ->
      let tbl = Database.table_exn db table in
      let binding = Plan.binding db plan in
      let keep = Expr.compile_filter binding filter in
      counters.Counters.pages_read <-
        counters.Counters.pages_read + Table.pages tbl;
      let rows = ref (Table.to_list tbl) in
      let rec next () =
        match !rows with
        | [] -> None
        | r :: tl ->
            rows := tl;
            counters.Counters.rows_scanned <- counters.Counters.rows_scanned + 1;
            if keep r then Some r else next ()
      in
      next
  | Plan.Index_scan { table; alias = _; index; lo; hi; filter } ->
      let tbl = Database.table_exn db table in
      let idx =
        match Database.find_index_by_name db index with
        | Some i -> i
        | None -> error "no such index: %s" index
      in
      counters.Counters.index_probes <- counters.Counters.index_probes + 1;
      let rids = Index.range idx ~lo ~hi in
      let binding = Plan.binding db plan in
      let keep = Expr.compile_filter binding filter in
      (* page model: each fetched rid costs a page read amortized by
         clustering factor ~ rows_per_page *)
      let rpp = Table.rows_per_page tbl in
      counters.Counters.pages_read <-
        counters.Counters.pages_read
        + ((List.length rids + rpp - 1) / max 1 rpp);
      let rows = ref rids in
      let rec next () =
        match !rows with
        | [] -> None
        | rid :: tl -> (
            rows := tl;
            match Table.get tbl rid with
            | None -> next ()
            | Some r ->
                counters.Counters.rows_scanned <-
                  counters.Counters.rows_scanned + 1;
                if keep r then Some r else next ())
      in
      next
  | Plan.Index_only_scan { table; alias = _; index; columns; lo; hi; filter }
    ->
      ignore (Database.table_exn db table : Table.t);
      let idx =
        match Database.find_index_by_name db index with
        | Some i -> i
        | None -> error "no such index: %s" index
      in
      (* The guard layer is supposed to catch a demotion before we get
         here; refusing to probe anyway keeps a stale cached plan from
         silently reading an unmaintained tree. *)
      if not (Index.is_readable idx) then
        error "index %s is not readable (state %s)" index
          (Index.state_to_string (Index.state idx));
      counters.Counters.index_probes <- counters.Counters.index_probes + 1;
      let binding = Plan.binding db plan in
      let keep = Expr.compile_filter binding filter in
      (* one output row per (key, rid) entry — bag semantics, matching
         what a heap scan projected onto the key columns would emit *)
      let entries = ref 0 in
      let rows =
        Index.fold_entries idx ~lo ~hi ~init:[] ~f:(fun acc key rids ->
            let n = List.length rids in
            entries := !entries + n;
            let rec rep k acc = if k = 0 then acc else rep (k - 1) (key :: acc)
            in
            rep n acc)
        |> List.rev
      in
      counters.Counters.rows_scanned <-
        counters.Counters.rows_scanned + !entries;
      (* page model: index leaf pages hold narrow key entries, not full
         rows — this is where the index-only I/O saving comes from *)
      let entry_width = Table.bytes_per_value * List.length columns in
      let entries_per_page = max 1 (Table.page_size / max 1 entry_width) in
      counters.Counters.pages_read <-
        counters.Counters.pages_read
        + ((!entries + entries_per_page - 1) / entries_per_page);
      cursor_of_list (List.filter keep rows)
  | Plan.Partition_scan { table; alias = _; partition; filter } ->
      let tbl = Database.table_exn db table in
      let part =
        match Database.partitioning db table with
        | Some p -> p
        | None -> error "table %s is not partitioned" table
      in
      if partition < 0 || partition >= Partition.count part then
        error "partition %d out of range for %s (%d segments)" partition
          table (Partition.count part);
      let binding = Plan.binding db plan in
      let keep = Expr.compile_filter binding filter in
      (* only the segment's pages are charged — a pruned sibling
         contributes zero I/O, which BENCH.json asserts *)
      let pages =
        Partition.pages part partition
          ~rows_per_page:(Table.rows_per_page tbl)
      in
      counters.Counters.pages_read <- counters.Counters.pages_read + pages;
      let pc = Counters.partition_counter counters ~table ~partition in
      pc.Counters.part_pages <- pc.Counters.part_pages + pages;
      let rows = ref (Partition.members part partition) in
      let rec next () =
        match !rows with
        | [] -> None
        | rid :: tl -> (
            rows := tl;
            match Table.get tbl rid with
            | None -> next ()
            | Some r ->
                counters.Counters.rows_scanned <-
                  counters.Counters.rows_scanned + 1;
                pc.Counters.part_rows <- pc.Counters.part_rows + 1;
                if keep r then Some r else next ())
      in
      next
  | Plan.Filter { input; pred } ->
      let binding = Plan.binding db input in
      let keep = Expr.compile_filter binding pred in
      let c = open_node wrap db counters input in
      let rec next () =
        match c () with
        | None -> None
        | Some r -> if keep r then Some r else next ()
      in
      next
  | Plan.Project { input; exprs } ->
      let binding = Plan.binding db input in
      let fns = List.map (fun (e, _) -> Expr.compile binding e) exprs in
      let fns = Array.of_list fns in
      let c = open_node wrap db counters input in
      fun () ->
        Option.map (fun r -> Array.map (fun f -> f r) fns) (c ())
  | Plan.Nested_loop_join { left; right; pred } ->
      let out_binding = Plan.binding db plan in
      let keep = Expr.compile_filter out_binding pred in
      let lcur = open_node wrap db counters left in
      (* materialize the inner side once; re-scanning real storage would
         double-count I/O that a block-nested-loop would cache *)
      let inner = drain (open_node wrap db counters right) in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | r :: tl ->
            pending := tl;
            Some r
        | [] -> (
            match lcur () with
            | None -> None
            | Some l ->
                pending :=
                  List.filter_map
                    (fun r ->
                      let joined = Tuple.concat l r in
                      if keep joined then Some joined else None)
                    inner;
                next ())
      in
      next
  | Plan.Hash_join { left; right; left_keys; right_keys; residual } ->
      if List.length left_keys <> List.length right_keys then
        error "hash join key arity mismatch";
      let lbind = Plan.binding db left and rbind = Plan.binding db right in
      let lkey = List.map (Expr.compile lbind) left_keys in
      let rkey = List.map (Expr.compile rbind) right_keys in
      let out_binding = Plan.binding db plan in
      let keep = Expr.compile_filter out_binding residual in
      let key_of fns row =
        List.map (fun f -> f row) fns
      in
      (* build on the right input *)
      let table = Hashtbl.create 1024 in
      List.iter
        (fun r ->
          let k = key_of rkey r in
          if not (List.exists Value.is_null k) then
            Hashtbl.add table k r)
        (drain (open_node wrap db counters right));
      let lcur = open_node wrap db counters left in
      let pending = ref [] in
      let rec next () =
        match !pending with
        | r :: tl ->
            pending := tl;
            Some r
        | [] -> (
            match lcur () with
            | None -> None
            | Some l ->
                let k = key_of lkey l in
                if List.exists Value.is_null k then next ()
                else begin
                  pending :=
                    List.filter_map
                      (fun r ->
                        let joined = Tuple.concat l r in
                        if keep joined then Some joined else None)
                      (Hashtbl.find_all table k);
                  next ()
                end)
      in
      next
  | Plan.Merge_join { left; right; left_keys; right_keys; residual } ->
      (* materialized merge join over inputs sorted on their keys *)
      let lbind = Plan.binding db left and rbind = Plan.binding db right in
      let lkey = Array.of_list (List.map (Expr.compile lbind) left_keys) in
      let rkey = Array.of_list (List.map (Expr.compile rbind) right_keys) in
      let out_binding = Plan.binding db plan in
      let keep = Expr.compile_filter out_binding residual in
      let key_of fns row = Array.map (fun f -> f row) fns in
      let cmp_keys a b =
        let n = Array.length a in
        let rec go i =
          if i >= n then 0
          else
            match Value.compare_total a.(i) b.(i) with
            | 0 -> go (i + 1)
            | c -> c
        in
        go 0
      in
      let lrows =
        drain (open_node wrap db counters left)
        |> List.map (fun r -> (key_of lkey r, r))
        |> List.sort (fun (a, _) (b, _) -> cmp_keys a b)
        |> Array.of_list
      in
      let rrows =
        drain (open_node wrap db counters right)
        |> List.map (fun r -> (key_of rkey r, r))
        |> List.sort (fun (a, _) (b, _) -> cmp_keys a b)
        |> Array.of_list
      in
      let out = ref [] in
      let i = ref 0 and j = ref 0 in
      let nl = Array.length lrows and nr = Array.length rrows in
      while !i < nl && !j < nr do
        let lk, _ = lrows.(!i) and rk, _ = rrows.(!j) in
        if Array.exists Value.is_null lk then incr i
        else if Array.exists Value.is_null rk then incr j
        else
          let c = cmp_keys lk rk in
          if c < 0 then incr i
          else if c > 0 then incr j
          else begin
            (* emit the cross product of the equal-key runs *)
            let jstart = !j in
            let rec run_end k =
              if k < nr && cmp_keys (fst rrows.(k)) lk = 0 then run_end (k + 1)
              else k
            in
            let jend = run_end jstart in
            let rec lrun i =
              if i < nl && cmp_keys (fst lrows.(i)) lk = 0 then begin
                for k = jstart to jend - 1 do
                  let joined = Tuple.concat (snd lrows.(i)) (snd rrows.(k)) in
                  if keep joined then out := joined :: !out
                done;
                lrun (i + 1)
              end
              else i
            in
            i := lrun !i;
            j := jend
          end
      done;
      cursor_of_list (List.rev !out)
  | Plan.Sort { input; keys } ->
      let binding = Plan.binding db input in
      let compiled =
        List.map (fun k -> (Expr.compile binding k.Plan.key, k.Plan.asc)) keys
      in
      let rows = drain (open_node wrap db counters input) in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (f, asc) :: tl -> (
              match Value.compare_total (f a) (f b) with
              | 0 -> go tl
              | c -> if asc then c else -c)
        in
        go compiled
      in
      cursor_of_list (List.stable_sort cmp rows)
  | Plan.Group { input; keys; aggs } ->
      let binding = Plan.binding db input in
      let key_fns = List.map (fun (e, _) -> Expr.compile binding e) keys in
      let agg_fns =
        List.map
          (fun a -> (a, Option.map (Expr.compile binding) a.Plan.arg))
          aggs
      in
      let groups : (Value.t list, (int ref * acc option array)) Hashtbl.t =
        Hashtbl.create 256
      in
      let order = ref [] in
      let rows = drain (open_node wrap db counters input) in
      List.iter
        (fun r ->
          let k = List.map (fun f -> f r) key_fns in
          let nrows, accs =
            match Hashtbl.find_opt groups k with
            | Some entry -> entry
            | None ->
                let entry =
                  ( ref 0,
                    Array.of_list
                      (List.map
                         (fun (_, arg) ->
                           match arg with
                           | None -> None
                           | Some _ -> Some (fresh_acc ()))
                         agg_fns) )
                in
                Hashtbl.add groups k entry;
                order := k :: !order;
                entry
          in
          incr nrows;
          List.iteri
            (fun i (_, arg) ->
              match (arg, accs.(i)) with
              | Some f, Some acc -> feed_acc acc (f r)
              | None, _ -> ()
              | Some _, None -> assert false)
            agg_fns)
        rows;
      let emit k =
        let nrows, accs = Hashtbl.find groups k in
        let agg_values =
          List.mapi
            (fun i (a, _) ->
              finish_acc a.Plan.fn accs.(i) ~rows_in_group:!nrows)
            agg_fns
        in
        Tuple.make (k @ agg_values)
      in
      (* a global aggregate over an empty input still yields one row *)
      if keys = [] && Hashtbl.length groups = 0 then
        let agg_values =
          List.map
            (fun (a, _) -> finish_acc a.Plan.fn None ~rows_in_group:0)
            agg_fns
        in
        cursor_of_list [ Tuple.make agg_values ]
      else cursor_of_list (List.rev_map emit !order)
  | Plan.Distinct input ->
      let rows = drain (open_node wrap db counters input) in
      let seen = Hashtbl.create 256 in
      let out =
        List.filter
          (fun r ->
            let key = Tuple.to_list r in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          rows
      in
      cursor_of_list out
  | Plan.Union_all inputs ->
      let remaining = ref inputs in
      let current = ref (fun () -> None) in
      let rec next () =
        match !current () with
        | Some r -> Some r
        | None -> (
            match !remaining with
            | [] -> None
            | p :: tl ->
                remaining := tl;
                current := open_node wrap db counters p;
                next ())
      in
      next
  | Plan.Limit { input; n } ->
      let c = open_node wrap db counters input in
      let emitted = ref 0 in
      (fun () ->
        if !emitted >= n then None
        else
          match c () with
          | None -> None
          | Some r ->
              incr emitted;
              Some r)
  | Plan.Scatter_gather { table; alias = _; children } ->
      let n = List.length children in
      let buffers = Array.make n [] in
      let subcounters = Array.init n (fun _ -> Counters.create ()) in
      (* Each child drains into a private buffer with private counters:
         tasks may run on arbitrary domains in arbitrary order, so
         nothing below this node may share mutable state.  The children
         are opened inside the task (not here), so their I/O happens on
         the executing domain; [wrap] is not applied below this node —
         per-node instrumentation stays single-domain. *)
      let task idx child () =
        Counters.reset subcounters.(idx) (* retry restarts the slice *);
        buffers.(idx) <- [];
        buffers.(idx) <-
          drain (open_raw (fun _ c -> c) db subcounters.(idx) child)
      in
      let tasks =
        Array.of_list (List.mapi (fun i (_, child) -> task i child) children)
      in
      let outcomes = !scatter_runner tasks in
      (* graceful degradation: retry a failed partition once in place,
         then fail the whole query with partition attribution *)
      Array.iteri
        (fun i outcome ->
          match outcome with
          | None -> ()
          | Some (Scatter_abandoned why) ->
              let part = fst (List.nth children i) in
              error "partition %d of %s abandoned: %s" part table why
          | Some first -> (
              match tasks.(i) () with
              | () -> ()
              | exception e ->
                  let part = fst (List.nth children i) in
                  error
                    "partition %d of %s failed after retry: %s (first: %s)"
                    part table (Printexc.to_string e)
                    (Printexc.to_string first)))
        outcomes;
      (* deterministic merge: buffers and counters fold in child order,
         whatever order the tasks actually completed in *)
      Array.iter (fun sub -> Counters.merge ~into:counters sub) subcounters;
      cursor_of_list (List.concat (Array.to_list buffers))

let no_wrap _plan cursor = cursor

let open_plan db counters plan = open_node no_wrap db counters plan

let run db ?counters plan =
  let counters =
    match counters with Some c -> c | None -> Counters.create ()
  in
  let rows = drain (open_plan db counters plan) in
  counters.Counters.rows_output <-
    counters.Counters.rows_output + List.length rows;
  rows

(* ---- per-node instrumentation ------------------------------------------- *)

(* Runtime statistics of one plan node.  [produced] (the node's actual
   output cardinality) is deterministic; [elapsed_s] is wall clock spent
   inside the node's cursor *including* its children — informational only,
   and kept out of any test-visible comparison. *)
module Node = struct
  type t = { mutable produced : int; mutable elapsed_s : float }

  let create () = { produced = 0; elapsed_s = 0.0 }
end

(* Run [plan] with every node's cursor wrapped in a probe.  Returns the
   result rows plus one [Node.t] per distinct plan node, keyed by physical
   identity: plans are immutable trees, so [==] on subtrees is exactly
   node identity.  (A subtree that opens twice — e.g. the inner of a
   nested-loop re-opened — accumulates into the same record.) *)
let run_instrumented db ?counters plan =
  let counters =
    match counters with Some c -> c | None -> Counters.create ()
  in
  let stats : (Plan.t * Node.t) list ref = ref [] in
  let stat_of node =
    match List.find_opt (fun (p, _) -> p == node) !stats with
    | Some (_, s) -> s
    | None ->
        let s = Node.create () in
        stats := (node, s) :: !stats;
        s
  in
  let wrap node cursor =
    let s = stat_of node in
    fun () ->
      let t0 = Sys.time () in
      let r = cursor () in
      s.Node.elapsed_s <- s.Node.elapsed_s +. (Sys.time () -. t0);
      (match r with Some _ -> s.Node.produced <- s.Node.produced + 1
      | None -> ());
      r
  in
  let rows = drain (open_node wrap db counters plan) in
  counters.Counters.rows_output <-
    counters.Counters.rows_output + List.length rows;
  (rows, !stats)
