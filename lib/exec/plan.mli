(** Physical query plans.

    A plan node is self-describing: {!binding} computes the tuple layout
    it produces, which downstream nodes compile their expressions against.
    Plans are built by the optimizer ({!Opt.Planner}) and interpreted by
    {!Operators}. *)

open Rel

type agg_fn = Count | Sum | Avg | Min | Max

type agg = {
  fn : agg_fn;
  arg : Expr.t option;  (** [None] only for [Count] (count every row) *)
  out_name : string;
}

type sort_key = { key : Expr.t; asc : bool }

type t =
  | Seq_scan of { table : string; alias : string; filter : Expr.pred }
  | Index_scan of {
      table : string;
      alias : string;
      index : string;
      lo : Index.bound;
      hi : Index.bound;
      filter : Expr.pred;  (** residual, applied after the probe *)
    }
  | Index_only_scan of {
      table : string;
      alias : string;
      index : string;
      columns : string list;  (** the index key columns — the output layout *)
      lo : Index.bound;
      hi : Index.bound;
      filter : Expr.pred;  (** over the key columns only *)
    }
      (** Answer the block from the index alone: one key tuple per
          indexed rid, never touching the heap.  Sound only when the
          index is [Readable] and its key covers every column the block
          needs — the planner certifies both
          ({!Opt.Rewrite.Index_access}). *)
  | Filter of { input : t; pred : Expr.pred }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Nested_loop_join of { left : t; right : t; pred : Expr.pred }
  | Hash_join of {
      left : t;  (** probe side *)
      right : t;  (** build side *)
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      residual : Expr.pred;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      residual : Expr.pred;
    }
  | Sort of { input : t; keys : sort_key list }
  | Group of { input : t; keys : (Expr.t * string) list; aggs : agg list }
  | Distinct of t
  | Union_all of t list
  | Limit of { input : t; n : int }
  | Partition_scan of {
      table : string;
      alias : string;
      partition : int;
      filter : Expr.pred;
    }
      (** Scan one segment of a partitioned table: only member rids are
          fetched, and only the segment's pages are charged. *)
  | Scatter_gather of {
      table : string;
      alias : string;
      children : (int * t) list;
          (** [(partition, subplan)] pairs, ascending by partition *)
    }
      (** Fan the children out through {!Operators.scatter_runner}
          (sequential by default; {!Srv} installs a pool-backed runner)
          and merge their buffered outputs in child order — the ordering
          is deterministic whatever the completion order. *)

val agg_fn_name : agg_fn -> string

val binding : Database.t -> t -> Expr.Binding.t
(** Output layout of a node ([db] supplies table schemas). *)

val referenced_tables : t -> string list
(** Tables the plan dereferences at open, sorted, deduplicated. *)

val referenced_indexes : t -> string list
(** Indexes the plan probes at open — with {!referenced_tables}, what
    the plan cache checks to detect DDL staleness (dropped table or
    index, demoted index) before running a compiled plan. *)

val pp : ?indent:int -> Format.formatter -> t -> unit

val pp_filter : Format.formatter -> Expr.pred -> unit
(** " filter (...)", or nothing for [Ptrue] — shared by the node labels
    of EXPLAIN ANALYZE. *)

val pp_bound : Format.formatter -> Index.bound -> unit
(** EXPLAIN-style tree rendering. *)

val to_string : t -> string
