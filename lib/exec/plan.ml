(* Physical query plans.

   A plan node is self-describing: [binding] computes the tuple layout it
   produces, which downstream nodes compile their expressions against.
   Plans are built by the optimizer ({!Opt.Planner}) and interpreted by
   {!Operators}. *)

open Rel

type agg_fn = Count | Sum | Avg | Min | Max

type agg = {
  fn : agg_fn;
  arg : Expr.t option; (* None only for Count *)
  out_name : string;
}

type sort_key = { key : Expr.t; asc : bool }

type t =
  | Seq_scan of { table : string; alias : string; filter : Expr.pred }
  | Index_scan of {
      table : string;
      alias : string;
      index : string;
      lo : Index.bound;
      hi : Index.bound;
      filter : Expr.pred; (* residual, applied after the probe *)
    }
  | Index_only_scan of {
      table : string;
      alias : string;
      index : string;
      columns : string list; (* the index key columns — the output layout *)
      lo : Index.bound;
      hi : Index.bound;
      filter : Expr.pred; (* over the key columns only *)
    }
    (* Answer the block from the index alone: emit one key tuple per
       indexed rid, never touching the heap.  Sound only when the index
       is Readable and its key covers every column the block needs —
       the planner certifies both (see Opt.Rewrite.Index_access). *)
  | Filter of { input : t; pred : Expr.pred }
  | Project of { input : t; exprs : (Expr.t * string) list }
  | Nested_loop_join of { left : t; right : t; pred : Expr.pred }
  | Hash_join of {
      left : t;
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      residual : Expr.pred;
    }
  | Merge_join of {
      left : t; (* both inputs are sorted on their keys by construction *)
      right : t;
      left_keys : Expr.t list;
      right_keys : Expr.t list;
      residual : Expr.pred;
    }
  | Sort of { input : t; keys : sort_key list }
  | Group of { input : t; keys : (Expr.t * string) list; aggs : agg list }
  | Distinct of t
  | Union_all of t list
  | Limit of { input : t; n : int }
  | Partition_scan of {
      table : string;
      alias : string;
      partition : int;
      filter : Expr.pred;
    }
  | Scatter_gather of {
      table : string;
      alias : string;
      children : (int * t) list; (* (partition, subplan), ascending *)
    }

let agg_fn_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

(* The output layout of each node. [db] supplies table schemas. *)
let rec binding (db : Database.t) plan : Expr.Binding.t =
  match plan with
  | Seq_scan { table; alias; _ }
  | Index_scan { table; alias; _ }
  | Partition_scan { table; alias; _ }
  (* the gather output has the scan layout even with zero children
     (all partitions pruned) *)
  | Scatter_gather { table; alias; _ } ->
      Expr.Binding.of_schema ~alias (Table.schema (Database.table_exn db table))
  | Index_only_scan { table; alias; columns; _ } ->
      let schema = Table.schema (Database.table_exn db table) in
      Array.of_list
        (List.map
           (fun name ->
             {
               Expr.Binding.qualifier = Some alias;
               name;
               dtype =
                 Option.map
                   (fun i -> (Schema.column_at schema i).Schema.dtype)
                   (Schema.find_index schema name);
             })
           columns)
  | Filter { input; _ } | Limit { input; _ } | Sort { input; _ }
  | Distinct input ->
      binding db input
  | Project { input = _; exprs } ->
      Array.of_list
        (List.map
           (fun (_, name) ->
             { Expr.Binding.qualifier = None; name; dtype = None })
           exprs)
  | Nested_loop_join { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_join { left; right; _ } ->
      Expr.Binding.concat (binding db left) (binding db right)
  | Group { keys; aggs; _ } ->
      Array.of_list
        (List.map
           (fun (_, name) ->
             { Expr.Binding.qualifier = None; name; dtype = None })
           keys
        @ List.map
            (fun a ->
              { Expr.Binding.qualifier = None; name = a.out_name; dtype = None })
            aggs)
  | Union_all [] -> [||]
  | Union_all (p :: _) -> binding db p

(* Catalog objects a plan dereferences at open — what the plan cache
   checks to detect DDL staleness (a dropped table/index, a demoted
   index) before running a compiled plan. *)
let rec referenced acc plan =
  let tables, indexes = acc in
  match plan with
  | Seq_scan { table; _ } | Partition_scan { table; _ } ->
      (table :: tables, indexes)
  | Index_scan { table; index; _ } | Index_only_scan { table; index; _ } ->
      (table :: tables, index :: indexes)
  | Scatter_gather { table; children; _ } ->
      List.fold_left
        (fun acc (_, p) -> referenced acc p)
        (table :: tables, indexes)
        children
  | Filter { input; _ }
  | Project { input; _ }
  | Sort { input; _ }
  | Group { input; _ }
  | Limit { input; _ }
  | Distinct input ->
      referenced acc input
  | Nested_loop_join { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_join { left; right; _ } ->
      referenced (referenced acc left) right
  | Union_all inputs -> List.fold_left referenced acc inputs

let referenced_tables plan =
  List.sort_uniq String.compare (fst (referenced ([], []) plan))

let referenced_indexes plan =
  List.sort_uniq String.compare (snd (referenced ([], []) plan))

(* Structural pretty-printer (EXPLAIN-style). *)
let rec pp ?(indent = 0) ppf plan =
  let pad = String.make indent ' ' in
  let child = indent + 2 in
  match plan with
  | Seq_scan { table; alias; filter } ->
      Fmt.pf ppf "%sSeqScan %s%s%a@." pad table
        (if alias = table then "" else " as " ^ alias)
        pp_filter filter
  | Index_scan { table; alias; index; lo; hi; filter } ->
      Fmt.pf ppf "%sIndexScan %s%s using %s [%a, %a]%a@." pad table
        (if alias = table then "" else " as " ^ alias)
        index pp_bound lo pp_bound hi pp_filter filter
  | Index_only_scan { table; alias; index; columns; lo; hi; filter } ->
      Fmt.pf ppf "%sIndexOnlyScan %s%s using %s (%s) [%a, %a]%a@." pad table
        (if alias = table then "" else " as " ^ alias)
        index
        (String.concat ", " columns)
        pp_bound lo pp_bound hi pp_filter filter
  | Filter { input; pred } ->
      Fmt.pf ppf "%sFilter %a@." pad Expr.pp_pred pred;
      pp ~indent:child ppf input
  | Project { input; exprs } ->
      Fmt.pf ppf "%sProject %a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, n) ->
             Fmt.pf ppf "%a as %s" Expr.pp e n))
        exprs;
      pp ~indent:child ppf input
  | Nested_loop_join { left; right; pred } ->
      Fmt.pf ppf "%sNestedLoopJoin on %a@." pad Expr.pp_pred pred;
      pp ~indent:child ppf left;
      pp ~indent:child ppf right
  | Hash_join { left; right; left_keys; right_keys; residual } ->
      Fmt.pf ppf "%sHashJoin %a = %a%a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        left_keys
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        right_keys pp_filter residual;
      pp ~indent:child ppf left;
      pp ~indent:child ppf right
  | Merge_join { left; right; left_keys; right_keys; residual } ->
      Fmt.pf ppf "%sMergeJoin %a = %a%a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        left_keys
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        right_keys pp_filter residual;
      pp ~indent:child ppf left;
      pp ~indent:child ppf right
  | Sort { input; keys } ->
      Fmt.pf ppf "%sSort %a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf k ->
             Fmt.pf ppf "%a%s" Expr.pp k.key (if k.asc then "" else " desc")))
        keys;
      pp ~indent:child ppf input
  | Group { input; keys; aggs } ->
      Fmt.pf ppf "%sGroup by %a aggs %a@." pad
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, _) -> Expr.pp ppf e))
        keys
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf a ->
             Fmt.pf ppf "%s(%a)" (agg_fn_name a.fn)
               Fmt.(option ~none:(any "*") Expr.pp)
               a.arg))
        aggs;
      pp ~indent:child ppf input
  | Distinct input ->
      Fmt.pf ppf "%sDistinct@." pad;
      pp ~indent:child ppf input
  | Union_all inputs ->
      Fmt.pf ppf "%sUnionAll (%d branches)@." pad (List.length inputs);
      List.iter (pp ~indent:child ppf) inputs
  | Limit { input; n } ->
      Fmt.pf ppf "%sLimit %d@." pad n;
      pp ~indent:child ppf input
  | Partition_scan { table; alias; partition; filter } ->
      Fmt.pf ppf "%sPartitionScan %s%s partition %d%a@." pad table
        (if alias = table then "" else " as " ^ alias)
        partition pp_filter filter
  | Scatter_gather { table; alias; children } ->
      Fmt.pf ppf "%sScatterGather %s%s (%d partitions)@." pad table
        (if alias = table then "" else " as " ^ alias)
        (List.length children);
      List.iter (fun (_, p) -> pp ~indent:child ppf p) children

and pp_filter ppf = function
  | Expr.Ptrue -> ()
  | p -> Fmt.pf ppf " filter (%a)" Expr.pp_pred p

and pp_bound ppf = function
  | Index.Unbounded -> Fmt.string ppf "-inf"
  | Index.Incl v -> Fmt.pf ppf "%a incl" Value.pp v
  | Index.Excl v -> Fmt.pf ppf "%a excl" Value.pp v

let to_string plan = Fmt.str "%a" (pp ~indent:0) plan
