(* SQL pretty-printer: renders ASTs back to parseable text.  The property
   test [parse ∘ print = id] (modulo predicate parenthesization) keeps it
   honest. *)

open Rel

let pp_select_item ppf = function
  | Ast.Star -> Fmt.string ppf "*"
  | Ast.Scalar (e, None) -> Expr.pp ppf e
  | Ast.Scalar (e, Some a) -> Fmt.pf ppf "%a AS %s" Expr.pp e a
  | Ast.Aggregate (fn, arg, alias) ->
      Fmt.pf ppf "%s(%a)%a" (Ast.agg_name fn)
        Fmt.(option ~none:(any "*") Expr.pp)
        arg
        Fmt.(option (fun ppf a -> Fmt.pf ppf " AS %s" a))
        alias

let pp_table_ref ppf (r : Ast.table_ref) =
  match r.alias with
  | None -> Fmt.string ppf r.table
  | Some a -> Fmt.pf ppf "%s %s" r.table a

let pp_order_item ppf (o : Ast.order_item) =
  Fmt.pf ppf "%a%s" Expr.pp o.key (if o.asc then "" else " DESC")

let rec pp_query ppf = function
  | Ast.Select s -> pp_select ppf s
  | Ast.Union_all qs ->
      Fmt.pf ppf "%a"
        (Fmt.list ~sep:(Fmt.any "@ UNION ALL@ ") (fun ppf q ->
             Fmt.pf ppf "(%a)" pp_query q))
        qs

and pp_select ppf (s : Ast.select) =
  Fmt.pf ppf "SELECT %s%a FROM %a"
    (if s.distinct then "DISTINCT " else "")
    (Fmt.list ~sep:(Fmt.any ", ") pp_select_item)
    s.items
    (Fmt.list ~sep:(Fmt.any ", ") pp_table_ref)
    s.from;
  (match s.where with
  | Expr.Ptrue -> ()
  | p -> Fmt.pf ppf " WHERE %a" Expr.pp_pred p);
  (match s.group_by with
  | [] -> ()
  | es ->
      Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:(Fmt.any ", ") Expr.pp) es);
  (match s.having with
  | Expr.Ptrue -> ()
  | p -> Fmt.pf ppf " HAVING %a" Expr.pp_pred p);
  (match s.order_by with
  | [] -> ()
  | os ->
      Fmt.pf ppf " ORDER BY %a"
        (Fmt.list ~sep:(Fmt.any ", ") pp_order_item)
        os);
  match s.limit with None -> () | Some n -> Fmt.pf ppf " LIMIT %d" n

let query_to_string q = Fmt.str "@[%a@]" pp_query q

let pp_constraint_mode ppf = function
  | Ast.Mode_enforced -> ()
  | Ast.Mode_informational -> Fmt.string ppf " NOT ENFORCED"
  | Ast.Mode_soft None -> Fmt.string ppf " SOFT"
  | Ast.Mode_soft (Some c) -> Fmt.pf ppf " SOFT CONFIDENCE %g" c

let pp_table_constraint ppf (c : Ast.table_constraint) =
  (match c.con_name with
  | Some n -> Fmt.pf ppf "CONSTRAINT %s " n
  | None -> ());
  Icdef.pp_body ppf c.con_body;
  pp_constraint_mode ppf c.con_mode

let pp_statement ppf = function
  | Ast.Query q -> pp_query ppf q
  | Ast.Explain q -> Fmt.pf ppf "EXPLAIN %a" pp_query q
  | Ast.Explain_analyze q -> Fmt.pf ppf "EXPLAIN ANALYZE %a" pp_query q
  | Ast.Create_table { name; cols; constraints } ->
      Fmt.pf ppf "CREATE TABLE %s (%a%s%a)" name
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
             Fmt.pf ppf "%s %s%s" c.Ast.col_name
               (Value.dtype_name c.Ast.col_type)
               (if c.Ast.col_not_null then " NOT NULL" else "")))
        cols
        (if constraints = [] then "" else ", ")
        (Fmt.list ~sep:(Fmt.any ", ") pp_table_constraint)
        constraints
  | Ast.Drop_table t -> Fmt.pf ppf "DROP TABLE %s" t
  | Ast.Drop_index i -> Fmt.pf ppf "DROP INDEX %s" i
  | Ast.Create_index { index_name; table; columns; unique; online } ->
      Fmt.pf ppf "CREATE %sINDEX %s ON %s (%a)%s"
        (if unique then "UNIQUE " else "")
        index_name table
        Fmt.(list ~sep:(any ", ") string)
        columns
        (if online then " ONLINE" else "")
  | Ast.Alter_add_constraint { table; con } ->
      Fmt.pf ppf "ALTER TABLE %s ADD %a" table pp_table_constraint con
  | Ast.Alter_partition_by { table; spec } -> (
      (* [Value.pp] prints SQL-lexable literals (dates as [DATE '…']),
         so the statement round-trips through the parser for WAL replay *)
      match spec with
      | Partition.Range { column; bounds } ->
          Fmt.pf ppf "ALTER TABLE %s PARTITION BY RANGE (%s) BOUNDS (%a)"
            table column
            Fmt.(list ~sep:(any ", ") Value.pp)
            bounds
      | Partition.Hash { column; buckets } ->
          Fmt.pf ppf "ALTER TABLE %s PARTITION BY HASH (%s) BUCKETS %d" table
            column buckets)
  | Ast.Drop_constraint { table; name } ->
      Fmt.pf ppf "ALTER TABLE %s DROP CONSTRAINT %s" table name
  | Ast.Create_exception_table { name; constraint_name } ->
      Fmt.pf ppf "CREATE EXCEPTION TABLE %s FOR CONSTRAINT %s" name
        constraint_name
  | Ast.Insert { table; columns; rows } ->
      Fmt.pf ppf "INSERT INTO %s%a VALUES %a" table
        Fmt.(
          option (fun ppf cs ->
              Fmt.pf ppf " (%a)" (list ~sep:(any ", ") string) cs))
        columns
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf row ->
             Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") Expr.pp) row))
        rows
  | Ast.Delete { table; where } -> (
      Fmt.pf ppf "DELETE FROM %s" table;
      match where with
      | Expr.Ptrue -> ()
      | p -> Fmt.pf ppf " WHERE %a" Expr.pp_pred p)
  | Ast.Update { table; assignments; where } -> (
      Fmt.pf ppf "UPDATE %s SET %a" table
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (c, e) ->
             Fmt.pf ppf "%s = %a" c Expr.pp e))
        assignments;
      match where with
      | Expr.Ptrue -> ()
      | p -> Fmt.pf ppf " WHERE %a" Expr.pp_pred p)
  | Ast.Runstats t ->
      Fmt.pf ppf "RUNSTATS%a"
        Fmt.(option (fun ppf t -> Fmt.pf ppf " %s" t))
        t

let statement_to_string s = Fmt.str "@[%a@]" pp_statement s
