(* Abstract syntax for the supported SQL subset.

   Scalar expressions and predicates reuse {!Rel.Expr} so that parsed
   queries, constraint statements, and optimizer rewrites share one
   representation. *)

open Rel

type agg_fn = Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Scalar of Expr.t * string option (* expr AS alias *)
  | Aggregate of agg_fn * Expr.t option * string option
    (* a COUNT over all rows is [Aggregate (Count, None, alias)] *)

type table_ref = { table : string; alias : string option }

type order_item = { key : Expr.t; asc : bool }

type select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list; (* joins are expressed in [where] *)
  where : Expr.pred;
  group_by : Expr.t list;
  having : Expr.pred;
    (* applies to the grouped output; references select-item output names
       (aliases, or the column name of a plain column item) *)
  order_by : order_item list;
  limit : int option;
}

type query = Select of select | Union_all of query list

(* --- DDL / DML ---------------------------------------------------------- *)

type col_def = {
  col_name : string;
  col_type : Value.dtype;
  col_not_null : bool;
}

(* Constraint clauses in CREATE TABLE / ALTER TABLE.  [mode] extends the
   paper's declaration surface: ENFORCED (default), INFORMATIONAL (NOT
   ENFORCED, optimizer-visible), or SOFT with an optional confidence —
   SOFT 1.0 is an absolute soft constraint, SOFT c (<1) a statistical one. *)
type constraint_mode =
  | Mode_enforced
  | Mode_informational
  | Mode_soft of float option (* CONFIDENCE c *)

type table_constraint = {
  con_name : string option;
  con_body : Icdef.body;
  con_mode : constraint_mode;
}

type statement =
  | Query of query
  | Explain of query
  | Explain_analyze of query (* EXPLAIN ANALYZE: execute and annotate *)
  | Create_table of {
      name : string;
      cols : col_def list;
      constraints : table_constraint list;
    }
  | Drop_table of string
  | Drop_index of string
  | Create_index of {
      index_name : string;
      table : string;
      columns : string list;
      unique : bool;
      online : bool;
          (* ONLINE: register a write-only shell and backfill concurrently
             with writes (lib/idx), instead of bulk-building eagerly *)
    }
  | Alter_add_constraint of { table : string; con : table_constraint }
  | Alter_partition_by of { table : string; spec : Partition.spec }
  | Drop_constraint of { table : string; name : string }
  | Create_exception_table of { name : string; constraint_name : string }
  | Insert of { table : string; columns : string list option;
                rows : Expr.t list list }
  | Delete of { table : string; where : Expr.pred }
  | Update of { table : string; assignments : (string * Expr.t) list;
                where : Expr.pred }
  | Runstats of string option (* table, or all *)

let select_defaults =
  {
    distinct = false;
    items = [ Star ];
    from = [];
    where = Expr.Ptrue;
    group_by = [];
    having = Expr.Ptrue;
    order_by = [];
    limit = None;
  }

let agg_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

(* All base tables a query mentions. *)
let rec tables_of_query = function
  | Select s -> List.map (fun r -> r.table) s.from
  | Union_all qs -> List.concat_map tables_of_query qs
