(* Hand-written SQL lexer.  Keywords are case-insensitive; identifiers keep
   their spelling.  String literals use single quotes with '' escaping.
   [DATE 'yyyy-mm-dd'] is lexed as keyword DATE + string and assembled by
   the parser. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STRING_LIT of string
  | KW of string (* uppercase keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "ORDER"; "BY"; "HAVING"; "AS";
    "AND"; "OR"; "NOT"; "BETWEEN"; "IN"; "IS"; "NULL"; "LIKE"; "DISTINCT";
    "UNION"; "ALL"; "LIMIT"; "ASC"; "DESC"; "JOIN"; "INNER"; "ON";
    "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "DROP"; "ALTER"; "ADD";
    "CONSTRAINT"; "PRIMARY"; "KEY"; "FOREIGN"; "REFERENCES"; "CHECK";
    "INSERT"; "INTO"; "VALUES"; "DELETE"; "UPDATE"; "SET";
    "INT"; "INTEGER"; "FLOAT"; "DOUBLE"; "REAL"; "VARCHAR"; "CHAR";
    "TEXT"; "BOOLEAN"; "BOOL"; "DATE"; "TRUE"; "FALSE";
    "ENFORCED"; "INFORMATIONAL"; "SOFT"; "CONFIDENCE"; "EXCEPTION"; "FOR";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "VIEW"; "DAYS"; "EXPLAIN"; "RUNSTATS";
    "ANALYZE"; "PARTITION"; "RANGE"; "HASH"; "BOUNDS"; "BUCKETS"; "ONLINE";
  ]

let keyword_set =
  let h = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace h k ()) keywords;
  h

exception Lex_error of string * int (* message, position *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let lex_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  let upper = String.uppercase_ascii text in
  if Hashtbl.mem keyword_set upper then KW upper else IDENT text

let lex_number st =
  let start = st.pos in
  let seen_dot = ref false in
  let seen_exp = ref false in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        go ()
    | Some '.' when not !seen_dot && not !seen_exp ->
        (* only a fraction if a digit follows; "1." alone is an error,
           "BETWEEN 1 AND 2" style never reaches here with '.' *)
        if
          st.pos + 1 < String.length st.src && is_digit st.src.[st.pos + 1]
        then begin
          seen_dot := true;
          advance st;
          go ()
        end
    | Some ('e' | 'E') when not !seen_exp ->
        if
          st.pos + 1 < String.length st.src
          && (is_digit st.src.[st.pos + 1]
             || ((st.src.[st.pos + 1] = '+' || st.src.[st.pos + 1] = '-')
                && st.pos + 2 < String.length st.src
                && is_digit st.src.[st.pos + 2]))
        then begin
          seen_exp := true;
          advance st;
          (match peek st with
          | Some ('+' | '-') -> advance st
          | _ -> ());
          go ()
        end
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !seen_dot || !seen_exp then FLOAT_LIT (float_of_string text)
  else INT_LIT (int_of_string text)

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Lex_error ("unterminated string literal", st.pos))
    | Some '\'' ->
        advance st;
        if peek st = Some '\'' then begin
          Buffer.add_char buf '\'';
          advance st;
          go ()
        end
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  STRING_LIT (Buffer.contents buf)

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws_and_comments st
  | Some '-'
    when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments st
  | _ -> ()

let next_token st =
  skip_ws_and_comments st;
  match peek st with
  | None -> EOF
  | Some c ->
      if is_ident_start c then lex_ident st
      else if is_digit c then lex_number st
      else if c = '\'' then lex_string st
      else begin
        advance st;
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | ',' -> COMMA
        | '.' -> DOT
        | ';' -> SEMI
        | '*' -> STAR
        | '+' -> PLUS
        | '-' -> MINUS
        | '/' -> SLASH
        | '=' -> EQ
        | '<' -> (
            match peek st with
            | Some '=' ->
                advance st;
                LE
            | Some '>' ->
                advance st;
                NEQ
            | _ -> LT)
        | '>' -> (
            match peek st with
            | Some '=' ->
                advance st;
                GE
            | _ -> GT)
        | '!' -> (
            match peek st with
            | Some '=' ->
                advance st;
                NEQ
            | _ -> raise (Lex_error ("unexpected '!'", st.pos)))
        | c ->
            raise
              (Lex_error (Printf.sprintf "unexpected character %C" c, st.pos))
      end

let tokenize src =
  let st = { src; pos = 0 } in
  let rec go acc =
    match next_token st with
    | EOF -> List.rev (EOF :: acc)
    | tok -> go (tok :: acc)
  in
  go []

let string_of_token = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "'%s'" s
  | KW k -> k
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
