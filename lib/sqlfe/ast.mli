(** Abstract syntax for the supported SQL subset.

    Scalar expressions and predicates reuse {!Rel.Expr} so that parsed
    queries, constraint statements, and optimizer rewrites share one
    representation.  Explicit [JOIN … ON] folds into [from] + [where] at
    parse time. *)

open Rel

type agg_fn = Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Scalar of Expr.t * string option  (** expr [AS alias] *)
  | Aggregate of agg_fn * Expr.t option * string option
      (** a COUNT over all rows is [Aggregate (Count, None, alias)] *)

type table_ref = { table : string; alias : string option }

type order_item = { key : Expr.t; asc : bool }

type select = {
  distinct : bool;
  items : select_item list;
  from : table_ref list;
  where : Expr.pred;
  group_by : Expr.t list;
  having : Expr.pred;
      (** applies to the grouped output; references select-item output
          names (aliases, or the column name of a plain column item) *)
  order_by : order_item list;
  limit : int option;
}

type query = Select of select | Union_all of query list

(** {1 DDL / DML} *)

type col_def = {
  col_name : string;
  col_type : Value.dtype;
  col_not_null : bool;
}

(** Constraint-clause modes (paper §1/§3): [Mode_enforced] (default),
    [Mode_informational] ([NOT ENFORCED]), or [Mode_soft c]
    ([SOFT [CONFIDENCE c]] — [None] means validate against the data). *)
type constraint_mode =
  | Mode_enforced
  | Mode_informational
  | Mode_soft of float option

type table_constraint = {
  con_name : string option;
  con_body : Icdef.body;
  con_mode : constraint_mode;
}

type statement =
  | Query of query
  | Explain of query
  | Explain_analyze of query (* EXPLAIN ANALYZE: execute and annotate *)
  | Create_table of {
      name : string;
      cols : col_def list;
      constraints : table_constraint list;
    }
  | Drop_table of string
  | Drop_index of string
  | Create_index of {
      index_name : string;
      table : string;
      columns : string list;
      unique : bool;
      online : bool;
          (** ONLINE: register a write-only shell and backfill concurrently
              with writes ({!Idx.Lifecycle}) instead of bulk-building *)
    }
  | Alter_add_constraint of { table : string; con : table_constraint }
  | Alter_partition_by of { table : string; spec : Partition.spec }
      (** [ALTER TABLE t PARTITION BY RANGE (c) BOUNDS (…)] /
          [… HASH (c) BUCKETS n] *)
  | Drop_constraint of { table : string; name : string }
  | Create_exception_table of { name : string; constraint_name : string }
      (** the ASC-as-AST declaration of §4.4 *)
  | Insert of {
      table : string;
      columns : string list option;
      rows : Expr.t list list;
    }
  | Delete of { table : string; where : Expr.pred }
  | Update of {
      table : string;
      assignments : (string * Expr.t) list;
      where : Expr.pred;
    }
  | Runstats of string option  (** a table, or all *)

val select_defaults : select
(** [SELECT * FROM] nothing: fill in the fields you need. *)

val agg_name : agg_fn -> string

val tables_of_query : query -> string list
