(* Recursive-descent parser for the SQL subset.

   The only backtracking point is the classic parenthesis ambiguity at the
   start of a predicate — "(" may open a nested predicate or a
   parenthesized scalar expression — resolved by attempting the predicate
   parse and falling back to the expression parse. *)

open Rel
open Lexer

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else EOF

let advance st = st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st
  else
    fail "expected %s but found %s" (string_of_token tok)
      (string_of_token (peek st))

let eat_kw st kw = eat st (KW kw)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (KW kw)

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | KW k
    when (* permit non-reserved keywords as identifiers where unambiguous *)
         List.mem k [ "DATE"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "KEY";
                      "VALUES"; "CONFIDENCE"; "DAYS" ] ->
      advance st;
      String.lowercase_ascii k
  | t -> fail "expected identifier, found %s" (string_of_token t)

(* ---- scalar expressions ---------------------------------------------- *)

let parse_literal st : Value.t option =
  match peek st with
  | INT_LIT i ->
      advance st;
      Some (Value.Int i)
  | FLOAT_LIT f ->
      advance st;
      Some (Value.Float f)
  | STRING_LIT s ->
      advance st;
      Some (Value.String s)
  | KW "TRUE" ->
      advance st;
      Some (Value.Bool true)
  | KW "FALSE" ->
      advance st;
      Some (Value.Bool false)
  | KW "NULL" ->
      advance st;
      Some Value.Null
  | KW "DATE" when (match peek2 st with STRING_LIT _ -> true | _ -> false)
    -> (
      advance st;
      match peek st with
      | STRING_LIT s -> (
          advance st;
          match Date.of_string_opt s with
          | Some d -> Some (Value.Date d)
          | None -> fail "invalid DATE literal '%s'" s)
      | _ -> assert false)
  | _ -> None

let rec parse_expr st : Expr.t =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | PLUS ->
        advance st;
        go (Expr.Binop (Expr.Add, lhs, parse_term st))
    | MINUS ->
        advance st;
        go (Expr.Binop (Expr.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st : Expr.t =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | STAR ->
        advance st;
        go (Expr.Binop (Expr.Mul, lhs, parse_factor st))
    | SLASH ->
        advance st;
        go (Expr.Binop (Expr.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st : Expr.t =
  match peek st with
  | MINUS -> (
      advance st;
      (* fold unary minus into numeric literals *)
      match peek st with
      | INT_LIT i ->
          advance st;
          Expr.Const (Value.Int (-i))
      | FLOAT_LIT f ->
          advance st;
          Expr.Const (Value.Float (-.f))
      | _ -> Expr.Neg (parse_factor st))
  | _ -> parse_primary st

and parse_primary st : Expr.t =
  match parse_literal st with
  | Some v ->
      (* tolerate a unit-noise postfix: "7 DAYS" *)
      ignore (accept_kw st "DAYS");
      Expr.Const v
  | None -> (
      match peek st with
      | LPAREN ->
          advance st;
          let e = parse_expr st in
          eat st RPAREN;
          e
      | IDENT _ | KW _ ->
          let first = ident st in
          if accept st DOT then
            let second = ident st in
            Expr.Col { Expr.rel = Some first; col = second }
          else Expr.Col { Expr.rel = None; col = first }
      | t -> fail "expected expression, found %s" (string_of_token t))

(* ---- predicates -------------------------------------------------------- *)

let cmp_of_token = function
  | EQ -> Some Expr.Eq
  | NEQ -> Some Expr.Ne
  | LT -> Some Expr.Lt
  | LE -> Some Expr.Le
  | GT -> Some Expr.Gt
  | GE -> Some Expr.Ge
  | _ -> None

let rec parse_pred st : Expr.pred =
  let lhs = parse_and_pred st in
  let rec go lhs =
    if accept_kw st "OR" then go (Expr.Or (lhs, parse_and_pred st)) else lhs
  in
  go lhs

and parse_and_pred st : Expr.pred =
  let lhs = parse_not_pred st in
  let rec go lhs =
    if accept_kw st "AND" then go (Expr.And (lhs, parse_not_pred st)) else lhs
  in
  go lhs

and parse_not_pred st : Expr.pred =
  if accept_kw st "NOT" then Expr.Not (parse_not_pred st)
  else parse_primary_pred st

and parse_primary_pred st : Expr.pred =
  match peek st with
  | KW "TRUE" when not (cmp_follows st) ->
      advance st;
      Expr.Ptrue
  | KW "FALSE" when not (cmp_follows st) ->
      advance st;
      Expr.Pfalse
  | LPAREN ->
      (* try nested predicate, fall back to parenthesized expression *)
      let saved = st.pos in
      (try
         advance st;
         let p = parse_pred st in
         eat st RPAREN;
         (* a comparison operator after "(pred)" means we mis-parsed *)
         match cmp_of_token (peek st) with
         | Some _ -> raise (Parse_error "reparse as expression")
         | None -> p
       with Parse_error _ ->
         st.pos <- saved;
         parse_comparison st)
  | _ -> parse_comparison st

and cmp_follows st = cmp_of_token (peek2 st) <> None

and parse_comparison st : Expr.pred =
  let lhs = parse_expr st in
  let negated = accept_kw st "NOT" in
  let wrap p = if negated then Expr.Not p else p in
  match peek st with
  | t when cmp_of_token t <> None ->
      if negated then fail "NOT cannot precede a comparison operator";
      advance st;
      let c = Option.get (cmp_of_token t) in
      Expr.Cmp (c, lhs, parse_expr st)
  | KW "BETWEEN" ->
      advance st;
      let lo = parse_expr st in
      eat_kw st "AND";
      let hi = parse_expr st in
      wrap (Expr.Between (lhs, lo, hi))
  | KW "IN" ->
      advance st;
      eat st LPAREN;
      let rec values acc =
        match parse_literal st with
        | Some v ->
            ignore (accept_kw st "DAYS");
            if accept st COMMA then values (v :: acc)
            else begin
              eat st RPAREN;
              List.rev (v :: acc)
            end
        | None ->
            fail "IN list supports literal values only, found %s"
              (string_of_token (peek st))
      in
      wrap (Expr.In_list (lhs, values []))
  | KW "IS" ->
      if negated then fail "NOT cannot precede IS";
      advance st;
      let not_null = accept_kw st "NOT" in
      eat_kw st "NULL";
      if not_null then Expr.Is_not_null lhs else Expr.Is_null lhs
  | t ->
      fail "expected comparison after expression, found %s"
        (string_of_token t)

(* ---- SELECT ------------------------------------------------------------ *)

let agg_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let parse_alias st =
  if accept_kw st "AS" then Some (ident st)
  else
    match peek st with
    | IDENT _ when peek st <> KW "FROM" -> Some (ident st)
    | _ -> None

let parse_select_item st : Ast.select_item =
  match peek st with
  | STAR ->
      advance st;
      Ast.Star
  | KW k when agg_of_kw k <> None && peek2 st = LPAREN ->
      let fn = Option.get (agg_of_kw k) in
      advance st;
      eat st LPAREN;
      let arg =
        if accept st STAR then begin
          if fn <> Ast.Count then fail "only COUNT accepts *";
          None
        end
        else Some (parse_expr st)
      in
      eat st RPAREN;
      let alias = parse_alias st in
      Ast.Aggregate (fn, arg, alias)
  | _ ->
      let e = parse_expr st in
      let alias = parse_alias st in
      Ast.Scalar (e, alias)

(* qualified names (sys.metrics) are stored dotted; the catalog treats
   the dotted string as the table name *)
let table_name st =
  let table = ident st in
  if accept st DOT then table ^ "." ^ ident st else table

let parse_table_ref st : Ast.table_ref =
  let table = table_name st in
  let alias =
    match peek st with
    | IDENT _ -> Some (ident st)
    | KW "AS" ->
        advance st;
        Some (ident st)
    | _ -> None
  in
  { Ast.table; alias }

let rec parse_select st : Ast.select =
  eat_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec items acc =
    let item = parse_select_item st in
    if accept st COMMA then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  eat_kw st "FROM";
  let first = parse_table_ref st in
  let rec from_tail refs join_preds =
    if accept st COMMA then
      let r = parse_table_ref st in
      from_tail (r :: refs) join_preds
    else if accept_kw st "INNER" || peek st = KW "JOIN" then begin
      eat_kw st "JOIN";
      let r = parse_table_ref st in
      eat_kw st "ON";
      let p = parse_pred st in
      from_tail (r :: refs) (p :: join_preds)
    end
    else (List.rev refs, List.rev join_preds)
  in
  let from, join_preds = from_tail [ first ] [] in
  let where =
    if accept_kw st "WHERE" then parse_pred st else Expr.Ptrue
  in
  let where = Expr.conjoin (Expr.conjuncts where @ join_preds) in
  let group_by =
    if accept_kw st "GROUP" then begin
      eat_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        if accept st COMMA then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having =
    if accept_kw st "HAVING" then parse_pred st else Expr.Ptrue
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      eat_kw st "BY";
      let rec go acc =
        let key = parse_expr st in
        let asc =
          if accept_kw st "DESC" then false
          else begin
            ignore (accept_kw st "ASC");
            true
          end
        in
        let item = { Ast.key; asc } in
        if accept st COMMA then go (item :: acc) else List.rev (item :: acc)
      in
      go []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match peek st with
      | INT_LIT n ->
          advance st;
          Some n
      | t -> fail "expected integer after LIMIT, found %s" (string_of_token t)
    else None
  in
  { Ast.distinct; items; from; where; group_by; having; order_by; limit }

and parse_query st : Ast.query =
  let parse_branch () =
    if peek st = LPAREN then begin
      advance st;
      let q = parse_query st in
      eat st RPAREN;
      q
    end
    else Ast.Select (parse_select st)
  in
  let first = parse_branch () in
  let rec go acc =
    if accept_kw st "UNION" then begin
      eat_kw st "ALL";
      go (parse_branch () :: acc)
    end
    else List.rev acc
  in
  match go [ first ] with [ q ] -> q | qs -> Ast.Union_all qs

(* ---- DDL / DML --------------------------------------------------------- *)

let parse_dtype st : Value.dtype =
  match peek st with
  | KW k -> (
      match Value.dtype_of_string k with
      | Some ty ->
          advance st;
          (* swallow optional length parameter: VARCHAR(30) *)
          if peek st = LPAREN then begin
            advance st;
            (match peek st with
            | INT_LIT _ -> advance st
            | t -> fail "expected length, found %s" (string_of_token t));
            eat st RPAREN
          end;
          ty
      | None -> fail "expected a type, found %s" k)
  | t -> fail "expected a type, found %s" (string_of_token t)

let parse_column_list st =
  eat st LPAREN;
  let rec go acc =
    let c = ident st in
    if accept st COMMA then go (c :: acc)
    else begin
      eat st RPAREN;
      List.rev (c :: acc)
    end
  in
  go []

let parse_constraint_mode st : Ast.constraint_mode =
  if accept_kw st "NOT" then begin
    eat_kw st "ENFORCED";
    Ast.Mode_informational
  end
  else if accept_kw st "INFORMATIONAL" then Ast.Mode_informational
  else if accept_kw st "SOFT" then
    if accept_kw st "CONFIDENCE" then
      match peek st with
      | FLOAT_LIT f ->
          advance st;
          Ast.Mode_soft (Some f)
      | INT_LIT i ->
          advance st;
          Ast.Mode_soft (Some (float_of_int i))
      | t -> fail "expected confidence value, found %s" (string_of_token t)
    else Ast.Mode_soft None
  else begin
    ignore (accept_kw st "ENFORCED");
    Ast.Mode_enforced
  end

let parse_constraint_body st : Icdef.body =
  if accept_kw st "PRIMARY" then begin
    eat_kw st "KEY";
    Icdef.Primary_key (parse_column_list st)
  end
  else if accept_kw st "UNIQUE" then Icdef.Unique (parse_column_list st)
  else if accept_kw st "FOREIGN" then begin
    eat_kw st "KEY";
    let columns = parse_column_list st in
    eat_kw st "REFERENCES";
    let ref_table = ident st in
    let ref_columns =
      if peek st = LPAREN then parse_column_list st else columns
    in
    Icdef.Foreign_key { columns; ref_table; ref_columns }
  end
  else if accept_kw st "CHECK" then begin
    eat st LPAREN;
    let p = parse_pred st in
    eat st RPAREN;
    Icdef.Check p
  end
  else fail "expected a constraint body, found %s" (string_of_token (peek st))

let parse_table_constraint st : Ast.table_constraint =
  let con_name =
    if accept_kw st "CONSTRAINT" then Some (ident st) else None
  in
  let con_body = parse_constraint_body st in
  let con_mode = parse_constraint_mode st in
  { Ast.con_name; con_body; con_mode }

let starts_table_constraint st =
  match peek st with
  | KW ("CONSTRAINT" | "PRIMARY" | "UNIQUE" | "FOREIGN" | "CHECK") -> true
  | _ -> false

let parse_create_table st : Ast.statement =
  let name = ident st in
  eat st LPAREN;
  let cols = ref [] and cons = ref [] in
  let rec go () =
    if starts_table_constraint st then
      cons := parse_table_constraint st :: !cons
    else begin
      let col_name = ident st in
      let col_type = parse_dtype st in
      let col_not_null = ref false in
      let rec attrs () =
        if accept_kw st "NOT" then begin
          eat_kw st "NULL";
          col_not_null := true;
          attrs ()
        end
        else if accept_kw st "PRIMARY" then begin
          eat_kw st "KEY";
          cons :=
            {
              Ast.con_name = None;
              con_body = Icdef.Primary_key [ col_name ];
              con_mode = Ast.Mode_enforced;
            }
            :: !cons;
          col_not_null := true;
          attrs ()
        end
      in
      attrs ();
      cols := { Ast.col_name; col_type; col_not_null = !col_not_null } :: !cols
    end;
    if accept st COMMA then go () else eat st RPAREN
  in
  go ();
  Ast.Create_table
    { name; cols = List.rev !cols; constraints = List.rev !cons }

let parse_insert st : Ast.statement =
  eat_kw st "INTO";
  let table = table_name st in
  let columns =
    if peek st = LPAREN && peek2 st <> RPAREN then
      (* lookahead: "(" followed by VALUES keyword never happens; a column
         list is a parenthesized ident list before VALUES *)
      Some (parse_column_list st)
    else None
  in
  eat_kw st "VALUES";
  let parse_row () =
    eat st LPAREN;
    let rec go acc =
      let e = parse_expr st in
      if accept st COMMA then go (e :: acc)
      else begin
        eat st RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  in
  let rec rows acc =
    let r = parse_row () in
    if accept st COMMA then rows (r :: acc) else List.rev (r :: acc)
  in
  Ast.Insert { table; columns; rows = rows [] }

let parse_statement_inner st : Ast.statement =
  match peek st with
  | KW "SELECT" | LPAREN -> Ast.Query (parse_query st)
  | KW "EXPLAIN" ->
      advance st;
      if accept_kw st "ANALYZE" then Ast.Explain_analyze (parse_query st)
      else Ast.Explain (parse_query st)
  | KW "CREATE" -> (
      advance st;
      if accept_kw st "TABLE" then parse_create_table st
      else if accept_kw st "UNIQUE" then begin
        eat_kw st "INDEX";
        let index_name = ident st in
        eat_kw st "ON";
        let table = ident st in
        let columns = parse_column_list st in
        let online = accept_kw st "ONLINE" in
        Ast.Create_index { index_name; table; columns; unique = true; online }
      end
      else if accept_kw st "INDEX" then begin
        let index_name = ident st in
        eat_kw st "ON";
        let table = ident st in
        let columns = parse_column_list st in
        let online = accept_kw st "ONLINE" in
        Ast.Create_index { index_name; table; columns; unique = false; online }
      end
      else if accept_kw st "EXCEPTION" then begin
        eat_kw st "TABLE";
        let name = ident st in
        eat_kw st "FOR";
        eat_kw st "CONSTRAINT";
        let constraint_name = ident st in
        Ast.Create_exception_table { name; constraint_name }
      end
      else fail "expected TABLE, INDEX or EXCEPTION after CREATE")
  | KW "DROP" ->
      advance st;
      if accept_kw st "INDEX" then Ast.Drop_index (ident st)
      else begin
        eat_kw st "TABLE";
        Ast.Drop_table (ident st)
      end
  | KW "ALTER" ->
      advance st;
      eat_kw st "TABLE";
      let table = ident st in
      if accept_kw st "ADD" then
        Ast.Alter_add_constraint { table; con = parse_table_constraint st }
      else if accept_kw st "DROP" then begin
        eat_kw st "CONSTRAINT";
        Ast.Drop_constraint { table; name = ident st }
      end
      else if accept_kw st "PARTITION" then begin
        eat_kw st "BY";
        let part_column () =
          eat st LPAREN;
          let c = ident st in
          eat st RPAREN;
          c
        in
        let literal () =
          match parse_literal st with
          | Some v -> v
          | None ->
              fail "expected a literal, found %s" (string_of_token (peek st))
        in
        if accept_kw st "RANGE" then begin
          let column = part_column () in
          eat_kw st "BOUNDS";
          eat st LPAREN;
          let rec bounds acc =
            let v = literal () in
            if accept st COMMA then bounds (v :: acc)
            else begin
              eat st RPAREN;
              List.rev (v :: acc)
            end
          in
          Ast.Alter_partition_by
            { table; spec = Partition.Range { column; bounds = bounds [] } }
        end
        else if accept_kw st "HASH" then begin
          let column = part_column () in
          eat_kw st "BUCKETS";
          match peek st with
          | INT_LIT buckets ->
              advance st;
              Ast.Alter_partition_by
                { table; spec = Partition.Hash { column; buckets } }
          | t -> fail "expected a bucket count, found %s" (string_of_token t)
        end
        else fail "expected RANGE or HASH after PARTITION BY"
      end
      else fail "expected ADD, DROP or PARTITION after ALTER TABLE"
  | KW "INSERT" ->
      advance st;
      parse_insert st
  | KW "DELETE" ->
      advance st;
      eat_kw st "FROM";
      let table = table_name st in
      let where =
        if accept_kw st "WHERE" then parse_pred st else Expr.Ptrue
      in
      Ast.Delete { table; where }
  | KW "UPDATE" ->
      advance st;
      let table = table_name st in
      eat_kw st "SET";
      let rec assigns acc =
        let c = ident st in
        eat st EQ;
        let e = parse_expr st in
        if accept st COMMA then assigns ((c, e) :: acc)
        else List.rev ((c, e) :: acc)
      in
      let assignments = assigns [] in
      let where =
        if accept_kw st "WHERE" then parse_pred st else Expr.Ptrue
      in
      Ast.Update { table; assignments; where }
  | KW "RUNSTATS" ->
      advance st;
      let table =
        match peek st with
        | IDENT _ -> Some (ident st)
        | _ -> None
      in
      Ast.Runstats table
  | t -> fail "expected a statement, found %s" (string_of_token t)

let parse_statement src : Ast.statement =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let stmt = parse_statement_inner st in
  ignore (accept st SEMI);
  if peek st <> EOF then
    fail "trailing input after statement: %s" (string_of_token (peek st));
  stmt

let parse_query_string src : Ast.query =
  match parse_statement src with
  | Ast.Query q -> q
  | _ -> fail "expected a SELECT query"

let parse_script src : Ast.statement list =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec go acc =
    if peek st = EOF then List.rev acc
    else begin
      let stmt = parse_statement_inner st in
      ignore (accept st SEMI);
      go (stmt :: acc)
    end
  in
  go []

let parse_pred_string src : Expr.pred =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let p = parse_pred st in
  if peek st <> EOF then
    fail "trailing input after predicate: %s" (string_of_token (peek st));
  p
